// Package bdd implements reduced ordered binary decision diagrams with an
// ite-based operation core, a unique table for canonicity and a computed
// table for memoisation. BDDs were the dominant CEC technology before SAT
// sweeping (Bryant 1986; Kuehlmann & Krohm 1997); here they serve as one
// engine of the portfolio checker and as an independent oracle in tests.
//
// The manager enforces a node limit: building past it aborts the current
// operation with ErrNodeLimit, which CEC callers report as "undecided" —
// the classic BDD memory-blowup failure mode, made deterministic.
package bdd

import (
	"errors"
	"fmt"

	"simsweep/internal/aig"
)

// ErrNodeLimit is returned when an operation would exceed the node budget.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Ref is a reference to a BDD node. The terminals are False (0) and True (1).
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level     int32 // variable index; terminals use a sentinel max level
	low, high Ref
}

const terminalLevel = int32(1<<30 - 1)

// Manager owns the node store of one BDD space over a fixed variable order
// (variable i is decision level i).
type Manager struct {
	numVars int
	limit   int
	nodes   []node
	unique  map[uint64]Ref
	cache   map[[3]Ref]Ref
}

// New creates a manager over numVars variables with a node limit
// (limit <= 0 selects 1<<22 nodes).
func New(numVars, limit int) *Manager {
	if limit <= 0 {
		limit = 1 << 22
	}
	m := &Manager{
		numVars: numVars,
		limit:   limit,
		nodes: []node{
			{level: terminalLevel}, // False
			{level: terminalLevel}, // True
		},
		unique: make(map[uint64]Ref),
		cache:  make(map[[3]Ref]Ref),
	}
	return m
}

// NumNodes returns the number of live nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.numVars {
		return 0, fmt.Errorf("bdd: variable %d out of range", i)
	}
	return m.run(func() Ref { return m.mk(int32(i), False, True) })
}

// run executes an operation, converting the internal limit panic into
// ErrNodeLimit.
func (m *Manager) run(f func() Ref) (r Ref, err error) {
	defer func() {
		if p := recover(); p != nil {
			if p == errLimitPanic {
				err = ErrNodeLimit
				return
			}
			panic(p)
		}
	}()
	return f(), nil
}

var errLimitPanic = new(int)

func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	key := (uint64(level)*0x9E3779B97F4A7C15 ^ uint64(uint32(low))) * 0xFF51AFD7ED558CCD
	key ^= uint64(uint32(high)) * 0xC4CEB9FE1A85EC53
	// Hits are verified against the node fields; collisions probe ahead.
	for {
		r, ok := m.unique[key]
		if !ok {
			break
		}
		n := m.nodes[r]
		if n.level == level && n.low == low && n.high == high {
			return r
		}
		key = key*0x9E3779B97F4A7C15 + 1
	}
	if len(m.nodes) >= m.limit {
		panic(errLimitPanic)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

func (m *Manager) cofactor(r Ref, level int32, high bool) Ref {
	n := m.nodes[r]
	if n.level != level {
		return r
	}
	if high {
		return n.high
	}
	return n.low
}

// ite computes if-then-else(f, g, h) recursively.
func (m *Manager) ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	lo := m.ite(m.cofactor(f, top, false), m.cofactor(g, top, false), m.cofactor(h, top, false))
	hi := m.ite(m.cofactor(f, top, true), m.cofactor(g, top, true), m.cofactor(h, top, true))
	r := m.mk(top, lo, hi)
	m.cache[key] = r
	return r
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.run(func() Ref { return m.ite(f, g, False) }) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.run(func() Ref { return m.ite(f, True, g) }) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.run(func() Ref { return m.ite(f, False, True) }) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	return m.run(func() Ref {
		ng := m.ite(g, False, True)
		return m.ite(f, ng, g)
	})
}

// AnySat returns a satisfying assignment of f over the manager's variables
// (false for variables f does not depend on). ok is false when f is
// unsatisfiable.
func (m *Manager) AnySat(f Ref) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.numVars)
	for f != True {
		n := m.nodes[f]
		if n.low != False {
			f = n.low
		} else {
			assign[n.level] = true
			f = n.high
		}
	}
	return assign, true
}

// Eval evaluates f under the assignment (indexed by variable).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// BuildAIG constructs the BDDs of the given AIG literals (typically the
// POs of a miter) under the variable order "PI position". It memoises per
// AIG node, so shared logic is translated once.
func (m *Manager) BuildAIG(g *aig.AIG, roots []aig.Lit) ([]Ref, error) {
	memo := make([]Ref, g.NumNodes())
	done := make([]bool, g.NumNodes())
	memo[0] = False
	done[0] = true
	for i := 0; i < g.NumPIs(); i++ {
		v, err := m.Var(i)
		if err != nil {
			return nil, err
		}
		memo[g.PIID(i)] = v
		done[g.PIID(i)] = true
	}
	build := func(root int) (Ref, error) {
		stack := []int{root}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			if done[id] {
				stack = stack[:len(stack)-1]
				continue
			}
			f0, f1 := g.Fanins(id)
			if !done[f0.ID()] || !done[f1.ID()] {
				if !done[f0.ID()] {
					stack = append(stack, f0.ID())
				}
				if !done[f1.ID()] {
					stack = append(stack, f1.ID())
				}
				continue
			}
			r0, r1 := memo[f0.ID()], memo[f1.ID()]
			var err error
			if f0.IsCompl() {
				if r0, err = m.Not(r0); err != nil {
					return 0, err
				}
			}
			if f1.IsCompl() {
				if r1, err = m.Not(r1); err != nil {
					return 0, err
				}
			}
			r, err := m.And(r0, r1)
			if err != nil {
				return 0, err
			}
			memo[id] = r
			done[id] = true
			stack = stack[:len(stack)-1]
		}
		return memo[root], nil
	}
	out := make([]Ref, len(roots))
	for i, root := range roots {
		r, err := build(root.ID())
		if err != nil {
			return nil, err
		}
		if root.IsCompl() {
			if r, err = m.Not(r); err != nil {
				return nil, err
			}
		}
		out[i] = r
	}
	return out, nil
}

// CheckMiter decides a miter by building the BDD of every PO.
// It returns equal=true when all POs are constant false; when some PO is
// satisfiable it returns equal=false and a PI counter-example. ErrNodeLimit
// means the decision exceeded the node budget (undecided).
func CheckMiter(g *aig.AIG, limit int) (equal bool, cex []bool, err error) {
	m := New(g.NumPIs(), limit)
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	refs, err := m.BuildAIG(g, roots)
	if err != nil {
		return false, nil, err
	}
	for _, r := range refs {
		if r != False {
			assign, _ := m.AnySat(r)
			return false, assign, nil
		}
	}
	return true, nil, nil
}
