package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simsweep/internal/aig"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	r, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTerminalsAndVar(t *testing.T) {
	m := New(3, 0)
	x := mustVar(t, m, 0)
	if x == False || x == True {
		t.Fatal("variable collapsed to terminal")
	}
	if m.Eval(x, []bool{true, false, false}) != true {
		t.Fatal("x0 under x0=1 is not 1")
	}
	if m.Eval(x, []bool{false, true, true}) != false {
		t.Fatal("x0 under x0=0 is not 0")
	}
	if _, err := m.Var(5); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	ab, _ := m.And(a, b)
	ba, _ := m.And(b, a)
	if ab != ba {
		t.Fatal("AND not canonical")
	}
	// (a ∧ b) ∨ (a ∧ ¬b) == a
	nb, _ := m.Not(b)
	anb, _ := m.And(a, nb)
	sum, _ := m.Or(ab, anb)
	if sum != a {
		t.Fatal("Shannon recombination not reduced to the variable")
	}
	na, _ := m.Not(a)
	nna, _ := m.Not(na)
	if nna != a {
		t.Fatal("double negation not canonical")
	}
}

func TestXorAndAnySat(t *testing.T) {
	m := New(3, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	x, _ := m.Xor(a, b)
	xx, _ := m.Xor(x, x)
	if xx != False {
		t.Fatal("f xor f != false")
	}
	assign, ok := m.AnySat(x)
	if !ok {
		t.Fatal("xor unsatisfiable")
	}
	if assign[0] == assign[1] {
		t.Fatalf("AnySat of xor returned %v", assign)
	}
	if _, ok := m.AnySat(False); ok {
		t.Fatal("false satisfiable")
	}
}

func TestNodeLimit(t *testing.T) {
	// A multiplier-like function under a tiny limit must abort.
	m := New(16, 64)
	acc := True
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		var x, y, s Ref
		if x, err = m.Var(i); err != nil {
			break
		}
		if y, err = m.Var(15 - i); err != nil {
			break
		}
		if s, err = m.Xor(x, y); err != nil {
			break
		}
		acc, err = m.And(acc, s)
	}
	if err == nil {
		// The chain alone may fit; force more structure.
		for i := 0; i < 8 && err == nil; i++ {
			var x Ref
			if x, err = m.Var(i); err != nil {
				break
			}
			acc, err = m.Xor(acc, x)
		}
	}
	if err != ErrNodeLimit {
		t.Fatalf("expected ErrNodeLimit, got %v (nodes=%d)", err, m.NumNodes())
	}
}

func TestBuildAIGMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := aig.New()
		lits := []aig.Lit{}
		for i := 0; i < 5; i++ {
			lits = append(lits, g.AddPI())
		}
		for i := 0; i < 25; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		root := lits[len(lits)-1].NotIf(rng.Intn(2) == 1)
		g.AddPO(root)
		m := New(g.NumPIs(), 0)
		refs, err := m.BuildAIG(g, []aig.Lit{root})
		if err != nil {
			t.Fatal(err)
		}
		for pat := 0; pat < 32; pat++ {
			in := make([]bool, 5)
			for i := range in {
				in[i] = (pat>>uint(i))&1 == 1
			}
			if m.Eval(refs[0], in) != g.Eval(in)[0] {
				t.Fatalf("trial %d pattern %d mismatch", trial, pat)
			}
		}
	}
}

func TestCheckMiterEquivalent(t *testing.T) {
	g := aig.New()
	a := g.AddPI()
	b := g.AddPI()
	x1 := g.Xor(a, b)
	x2 := g.And(g.Or(a, b), g.And(a, b).Not())
	g.AddPO(g.Xor(x1, x2))
	equal, cex, err := CheckMiter(g, 0)
	if err != nil || !equal {
		t.Fatalf("equal=%v cex=%v err=%v", equal, cex, err)
	}
}

func TestCheckMiterInequivalentGivesValidCEX(t *testing.T) {
	g := aig.New()
	a := g.AddPI()
	b := g.AddPI()
	g.AddPO(g.Xor(g.Xor(a, b), g.And(a, b)))
	equal, cex, err := CheckMiter(g, 0)
	if err != nil || equal {
		t.Fatalf("equal=%v err=%v", equal, err)
	}
	if out := g.Eval(cex); !out[0] {
		t.Fatalf("CEX %v does not fire the miter", cex)
	}
}

func TestCheckMiterNodeLimitUndecided(t *testing.T) {
	// A dense random miter with a tiny node budget must bail out.
	rng := rand.New(rand.NewSource(77))
	g := aig.New()
	lits := []aig.Lit{}
	for i := 0; i < 16; i++ {
		lits = append(lits, g.AddPI())
	}
	for i := 0; i < 300; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	g.AddPO(lits[len(lits)-1])
	_, _, err := CheckMiter(g, 32)
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestQuickBDDAgainstEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(4, 0)
		refs := make([]Ref, 4)
		for i := range refs {
			r, err := m.Var(i)
			if err != nil {
				return false
			}
			refs[i] = r
		}
		// Shadow truth tables over 16 minterms.
		type fn struct {
			ref Ref
			tt  uint16
		}
		pool := make([]fn, 4)
		for i := range pool {
			var tt uint16
			for pat := 0; pat < 16; pat++ {
				if (pat>>uint(i))&1 == 1 {
					tt |= 1 << uint(pat)
				}
			}
			pool[i] = fn{refs[i], tt}
		}
		for step := 0; step < 20; step++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			var r Ref
			var tt uint16
			var err error
			switch rng.Intn(3) {
			case 0:
				r, err = m.And(a.ref, b.ref)
				tt = a.tt & b.tt
			case 1:
				r, err = m.Or(a.ref, b.ref)
				tt = a.tt | b.tt
			default:
				r, err = m.Xor(a.ref, b.ref)
				tt = a.tt ^ b.tt
			}
			if err != nil {
				return false
			}
			pool = append(pool, fn{r, tt})
		}
		for _, p := range pool {
			for pat := 0; pat < 16; pat++ {
				in := []bool{pat&1 == 1, pat&2 == 2, pat&4 == 4, pat&8 == 8}
				if m.Eval(p.ref, in) != ((p.tt>>uint(pat))&1 == 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
