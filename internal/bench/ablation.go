package bench

import (
	"fmt"
	"strings"
	"time"

	"simsweep/internal/core"
	"simsweep/internal/cuts"
	"simsweep/internal/satsweep"
)

// AblationRow reports one engine variant on one case.
type AblationRow struct {
	Case       Case
	Variant    string
	Total      time.Duration // sim engine + SAT backend
	SimTime    time.Duration
	ReducedPct float64
}

// ablationVariant describes one configuration tweak.
type ablationVariant struct {
	name  string
	tweak func(*core.Config)
}

// AblationSuites enumerates the design-choice ablations of DESIGN.md:
// window merging, similarity steering, and the Table I pass set.
func AblationSuites() map[string][]string {
	out := map[string][]string{}
	for group, vs := range ablationGroups() {
		for _, v := range vs {
			out[group] = append(out[group], v.name)
		}
	}
	return out
}

func ablationGroups() map[string][]ablationVariant {
	starve := func(cfg *core.Config) {
		// Push the work into the mechanism under test.
		cfg.KP, cfg.Kp, cfg.Kg = 10, 8, 8
	}
	return map[string][]ablationVariant{
		"window-merge": {
			{"merged", func(cfg *core.Config) {}},
			{"unmerged", func(cfg *core.Config) { cfg.DisableWindowMerge = true }},
		},
		"similarity": {
			{"steered", starve},
			{"unsteered", func(cfg *core.Config) { starve(cfg); cfg.DisableSimilarity = true }},
		},
		"passes": {
			{"pass1-only", func(cfg *core.Config) { starve(cfg); cfg.LocalPasses = []cuts.Pass{cuts.PassFanout} }},
			{"pass2-only", func(cfg *core.Config) { starve(cfg); cfg.LocalPasses = []cuts.Pass{cuts.PassSmallLevel} }},
			{"pass3-only", func(cfg *core.Config) { starve(cfg); cfg.LocalPasses = []cuts.Pass{cuts.PassLargeLevel} }},
			{"all-passes", starve},
		},
		"extensions": {
			{"baseline", starve},
			{"distance1", func(cfg *core.Config) { starve(cfg); cfg.Distance1CEX = true }},
			{"adaptive", func(cfg *core.Config) { starve(cfg); cfg.AdaptivePasses = true }},
			{"rewrite", func(cfg *core.Config) { starve(cfg); cfg.InterleaveRewrite = true }},
			{"guided", func(cfg *core.Config) { starve(cfg); cfg.GuidedPatterns = true }},
		},
	}
}

// RunAblation executes every variant of the named group on the instance.
func RunAblation(group string, inst *Instance, o Options) ([]AblationRow, error) {
	variants, ok := ablationGroups()[group]
	if !ok {
		return nil, fmt.Errorf("bench: unknown ablation group %q", group)
	}
	var rows []AblationRow
	for _, v := range variants {
		cfg := o.simConfig(o.dev())
		v.tweak(&cfg)
		start := time.Now()
		res := core.CheckMiter(inst.Miter, cfg)
		simTime := time.Since(start)
		total := simTime
		if res.Outcome == core.Undecided {
			sr := satsweep.CheckMiter(res.Reduced, satsweep.Options{Dev: o.dev(), Seed: o.Seed})
			total += sr.Stats.Runtime
		}
		rows = append(rows, AblationRow{
			Case:       inst.Case,
			Variant:    v.name,
			Total:      total,
			SimTime:    simTime,
			ReducedPct: res.Stats.ReductionPercent(),
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows grouped by case.
func FormatAblation(group string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation %q\n", group)
	fmt.Fprintf(&b, "%-18s %-12s %10s %10s %9s\n", "Benchmark", "variant", "sim(s)", "total(s)", "reduced")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-12s %10.3f %10.3f %8.1f%%\n",
			r.Case, r.Variant, r.SimTime.Seconds(), r.Total.Seconds(), r.ReducedPct)
	}
	return b.String()
}
