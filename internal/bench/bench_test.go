package bench

import (
	"strings"
	"testing"
	"time"

	"simsweep/internal/core"
)

func quickOptions() Options {
	return Options{Seed: 1}
}

func buildQuick(t *testing.T, name string) *Instance {
	t.Helper()
	var c Case
	for _, cc := range Suite(1) {
		if cc.Name == name {
			c = cc
			break
		}
	}
	if c.Name == "" {
		t.Fatalf("case %s not in suite", name)
	}
	// Shrink for unit testing.
	c.Doublings = 0
	if c.Scale > 6 {
		c.Scale = 6
	}
	inst, err := Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSuiteCoversPaperFamilies(t *testing.T) {
	suite := Suite(1)
	if len(suite) != 9 {
		t.Fatalf("suite has %d cases, want 9", len(suite))
	}
	names := map[string]bool{}
	for _, c := range suite {
		names[c.Name] = true
	}
	for _, want := range []string{"hyp", "log2", "multiplier", "sqrt", "square", "voter", "sin", "ac97_ctrl", "vga_lcd"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
	big := Suite(2)
	if big[0].Scale <= suite[0].Scale {
		t.Fatal("larger suite size did not scale up")
	}
}

func TestCaseStringMatchesPaperNaming(t *testing.T) {
	c := Case{Name: "log2", Scale: 10, Doublings: 10}
	if c.String() != "log2_10xd" {
		t.Fatalf("case name = %s", c.String())
	}
	if (Case{Name: "hyp"}).String() != "hyp" {
		t.Fatal("undoubled case misnamed")
	}
}

func TestBuildProducesEquivalentPair(t *testing.T) {
	inst := buildQuick(t, "multiplier")
	if inst.Miter.NumAnds() == 0 {
		t.Fatal("trivial miter: optimizer produced identical structure")
	}
	res := core.CheckMiter(inst.Miter, core.DefaultConfig())
	if res.Outcome == core.NotEquivalent {
		t.Fatal("benchmark construction produced an inequivalent pair")
	}
}

func TestRunTable2CaseColumns(t *testing.T) {
	inst := buildQuick(t, "multiplier")
	row := RunTable2Case(inst, quickOptions())
	if row.Verdicts[0] != "equivalent" || row.Verdicts[2] != "equivalent" {
		t.Fatalf("verdicts = %v", row.Verdicts)
	}
	if row.TotalOurs <= 0 || row.ABCTime <= 0 || row.CfmTime <= 0 {
		t.Fatalf("missing timings: %+v", row)
	}
	if row.TotalOurs != row.GPUTime+row.SATAfter {
		t.Fatal("total != GPU + SAT")
	}
	if row.ReducedPct < 0 || row.ReducedPct > 100 {
		t.Fatalf("reduction = %v", row.ReducedPct)
	}
	if row.SpeedupABC <= 0 {
		t.Fatalf("speedup = %v", row.SpeedupABC)
	}
}

func TestFormatTable2(t *testing.T) {
	rows := []Table2Row{
		{
			Case: Case{Name: "multiplier", Doublings: 2}, PIs: 10, POs: 10,
			Nodes: 1000, Levels: 30,
			ABCTime: 2 * time.Second, CfmTime: time.Second,
			GPUTime: 100 * time.Millisecond, ReducedPct: 100,
			TotalOurs: 100 * time.Millisecond, SpeedupABC: 20, SpeedupCfm: 10,
		},
		{
			Case: Case{Name: "sqrt", Doublings: 2}, PIs: 8, POs: 4,
			Nodes: 500, Levels: 60,
			ABCTime: time.Second, CfmTime: time.Second,
			GPUTime: 50 * time.Millisecond, ReducedPct: 1,
			SATAfter: time.Second, TotalOurs: 1050 * time.Millisecond,
			SpeedupABC: 0.95, SpeedupCfm: 0.95,
		},
	}
	out := FormatTable2(rows)
	for _, want := range []string{"multiplier_2xd", "sqrt_2xd", "Geomean", "fully proved 1 of 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure6Case(t *testing.T) {
	inst := buildQuick(t, "multiplier")
	row := RunFigure6Case(inst, quickOptions())
	p, g, l := row.Percent()
	sum := p + g + l
	if row.Total > 0 && (sum < 99.0 || sum > 101.0) {
		t.Fatalf("percentages sum to %v", sum)
	}
	out := FormatFigure6([]Figure6Row{row})
	if !strings.Contains(out, "multiplier") {
		t.Fatalf("figure output missing case:\n%s", out)
	}
}

func TestRunFigure7Case(t *testing.T) {
	inst := buildQuick(t, "multiplier")
	row := RunFigure7Case(inst, quickOptions())
	if row.Standalone <= 0 {
		t.Fatal("no standalone time")
	}
	// The flow prefixes only ever shrink the miter, so normalised times
	// must be non-increasing along P -> PG -> PGL (within noise) and the
	// final one must not exceed ~1 by much on a provable case.
	if row.AfterPGL > row.AfterP+0.5 {
		t.Fatalf("PGL (%v) much slower than P (%v)", row.AfterPGL, row.AfterP)
	}
	out := FormatFigure7([]Figure7Row{row})
	if !strings.Contains(out, "PGL") {
		t.Fatalf("figure output malformed:\n%s", out)
	}
}

func TestBreakdownBarWidth(t *testing.T) {
	bar := breakdownBar(50, 25, 25)
	if len(bar) != 40 {
		t.Fatalf("bar width = %d", len(bar))
	}
	if !strings.Contains(bar, "#") || !strings.Contains(bar, "+") || !strings.Contains(bar, "-") {
		t.Fatalf("bar segments missing: %q", bar)
	}
}

func TestRunAblationGroups(t *testing.T) {
	inst := buildQuick(t, "multiplier")
	for group := range AblationSuites() {
		rows, err := RunAblation(group, inst, quickOptions())
		if err != nil {
			t.Fatalf("%s: %v", group, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: only %d variants", group, len(rows))
		}
		for _, r := range rows {
			if r.Total <= 0 || r.ReducedPct < 0 || r.ReducedPct > 100 {
				t.Fatalf("%s/%s: implausible row %+v", group, r.Variant, r)
			}
		}
		out := FormatAblation(group, rows)
		if !strings.Contains(out, rows[0].Variant) {
			t.Fatalf("%s: formatted output missing variants:\n%s", group, out)
		}
	}
	if _, err := RunAblation("nonexistent", inst, quickOptions()); err == nil {
		t.Fatal("unknown ablation group accepted")
	}
}

func TestSortRowsPaperOrder(t *testing.T) {
	rows := []Table2Row{
		{Case: Case{Name: "vga_lcd"}},
		{Case: Case{Name: "hyp"}},
		{Case: Case{Name: "voter"}},
	}
	SortRowsPaperOrder(rows)
	if rows[0].Case.Name != "hyp" || rows[2].Case.Name != "vga_lcd" {
		t.Fatalf("order = %v %v %v", rows[0].Case, rows[1].Case, rows[2].Case)
	}
}
