// Package bench is the experiment harness regenerating the paper's
// evaluation artifacts: Table II (per-benchmark runtime comparison of the
// SAT sweeping baseline, the portfolio "commercial" checker and the
// simulation engine + SAT hybrid), Figure 6 (phase runtime breakdown of
// the simulation engine) and Figure 7 (SAT time on the intermediate miters
// of the P / PG / PGL flow prefixes, normalised to standalone SAT).
//
// The benchmark instances are width-scaled regenerations of the paper's
// families (see internal/gen); absolute runtimes are CPU-sized, but the
// comparison columns are computed identically to the paper's.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"simsweep/internal/aig"
	"simsweep/internal/bdd"
	"simsweep/internal/core"
	"simsweep/internal/gen"
	"simsweep/internal/miter"
	"simsweep/internal/opt"
	"simsweep/internal/par"
	"simsweep/internal/portfolio"
	"simsweep/internal/satsweep"
)

// Case describes one experiment instance: a benchmark family, its scale
// and the number of doubling enlargements (the paper's "_nxd" suffix).
type Case struct {
	Name      string
	Scale     int
	Doublings int
}

// String names the case as "<family>-<scale>[xN]".
func (c Case) String() string {
	if c.Doublings == 0 {
		return c.Name
	}
	return fmt.Sprintf("%s_%dxd", c.Name, c.Doublings)
}

// Suite returns the nine Table II families at CPU-sized scales. size 0 or
// 1 selects the quick suite; 2 roughly quadruples the instances.
func Suite(size int) []Case {
	if size < 1 {
		size = 1
	}
	d := size - 1 // extra doublings
	return []Case{
		{Name: "hyp", Scale: 5 + size, Doublings: 1 + d},
		{Name: "log2", Scale: 8 + 2*size, Doublings: 1 + d},
		{Name: "multiplier", Scale: 6 + 2*size, Doublings: 1 + d},
		{Name: "sqrt", Scale: 8 + 4*size, Doublings: 1 + d},
		{Name: "square", Scale: 6 + 2*size, Doublings: 1 + d},
		{Name: "voter", Scale: 3 + size, Doublings: 1 + d},
		{Name: "sin", Scale: 8 + 2*size, Doublings: 1 + d},
		{Name: "ac97_ctrl", Scale: 3 + size, Doublings: 1 + d},
		{Name: "vga_lcd", Scale: 3 + size, Doublings: 1 + d},
	}
}

// Instance is a materialised experiment: the original and optimized
// circuits and their miter.
type Instance struct {
	Case  Case
	Orig  *aig.AIG
	Opt   *aig.AIG
	Miter *aig.AIG
}

// Build materialises a case: generate, enlarge by doubling, optimize with
// the resyn2-style script and build the miter — the exact construction of
// the paper's benchmarks.
func Build(c Case, dev *par.Device) (*Instance, error) {
	g, err := gen.Benchmark(c.Name, c.Scale)
	if err != nil {
		return nil, err
	}
	g = aig.DoubleN(g, c.Doublings)
	o := opt.Resyn2(g, dev)
	m, err := miter.Build(g, o)
	if err != nil {
		return nil, err
	}
	m.Name = c.String()
	return &Instance{Case: c, Orig: g, Opt: o, Miter: m}, nil
}

// Options configures the harness.
type Options struct {
	Workers       int
	Seed          int64
	ConflictLimit int64 // SAT conflict limit of the hybrid's backend
	// SimConfig overrides the engine configuration (nil: defaults).
	SimConfig *core.Config
	// Dev, when non-nil, is the shared parallel device every engine run
	// dispatches on, so one kernel profile accumulates across the whole
	// harness run (the machine-readable BENCH_sim.json of benchtab).
	// When nil, each run gets a fresh device with Workers workers.
	Dev *par.Device
}

func (o Options) dev() *par.Device {
	if o.Dev != nil {
		return o.Dev
	}
	return par.NewDevice(o.Workers)
}

func (o Options) simConfig(dev *par.Device) core.Config {
	cfg := core.DefaultConfig()
	if o.SimConfig != nil {
		cfg = *o.SimConfig
	}
	cfg.Dev = dev
	cfg.Seed = o.Seed
	return cfg
}

// Table2Row is one line of the Table II reproduction.
type Table2Row struct {
	Case       Case
	PIs, POs   int
	Nodes      int // miter AND nodes
	Levels     int
	ABCTime    time.Duration // standalone SAT sweeping ("ABC &cec")
	CfmTime    time.Duration // portfolio checker ("Conformal, 16 CPUs")
	GPUTime    time.Duration // simulation engine alone ("GPU (s)")
	ReducedPct float64       // miter reduction by the simulation engine
	SATAfter   time.Duration // SAT on the reduced miter ("ABC (s)")
	TotalOurs  time.Duration // GPU + SAT ("Total (s)")
	SpeedupABC float64
	SpeedupCfm float64
	Verdicts   [3]string // abc, cfm, ours
}

// RunTable2Case produces one row.
func RunTable2Case(inst *Instance, o Options) Table2Row {
	row := Table2Row{
		Case:   inst.Case,
		PIs:    inst.Orig.NumPIs(),
		POs:    inst.Orig.NumPOs(),
		Nodes:  inst.Miter.NumAnds(),
		Levels: inst.Miter.Level(),
	}

	// Column "ABC &cec": the standalone SAT sweeping baseline.
	abcStart := time.Now()
	abcRes := satsweep.CheckMiter(inst.Miter, satsweep.Options{Dev: o.dev(), Seed: o.Seed})
	row.ABCTime = time.Since(abcStart)
	row.Verdicts[0] = abcRes.Outcome.String()

	// Column "Cfm": the multi-engine portfolio.
	cfmStart := time.Now()
	cfmRes := portfolio.Check(inst.Miter, portfolioEngines(o))
	row.CfmTime = time.Since(cfmStart)
	row.Verdicts[1] = cfmRes.Verdict.String()

	// Columns "Ours": simulation engine, then SAT on the remainder.
	gpuStart := time.Now()
	simRes := core.CheckMiter(inst.Miter, o.simConfig(o.dev()))
	row.GPUTime = time.Since(gpuStart)
	row.ReducedPct = simRes.Stats.ReductionPercent()
	total := row.GPUTime
	verdict := simRes.Outcome.String()
	if simRes.Outcome == core.Undecided {
		satStart := time.Now()
		after := satsweep.CheckMiter(simRes.Reduced, satsweep.Options{
			Dev:           o.dev(),
			Seed:          o.Seed,
			ConflictLimit: o.ConflictLimit,
		})
		row.SATAfter = time.Since(satStart)
		total += row.SATAfter
		verdict = after.Outcome.String()
	}
	row.TotalOurs = total
	row.Verdicts[2] = verdict

	row.SpeedupABC = ratio(row.ABCTime, row.TotalOurs)
	row.SpeedupCfm = ratio(row.CfmTime, row.TotalOurs)
	return row
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}

// portfolioEngines assembles the commercial-checker substitute. Following
// the paper's model of the commercial tool ("a combination of engines …
// run different engines simultaneously and early stop"), it races the
// classic commercial engine mix — SAT sweeping with two different seeds
// and a BDD engine — WITHOUT the paper's own simulation engine, which is
// the novelty under evaluation.
func portfolioEngines(o Options) []portfolio.Engine {
	mkSAT := func(name string, seed int64) portfolio.Engine {
		return portfolio.Engine{
			Name: name,
			Run: func(m *aig.AIG, stop <-chan struct{}) (portfolio.Verdict, []bool) {
				sr := satsweep.CheckMiter(m, satsweep.Options{Dev: o.dev(), Seed: seed, Stop: stop})
				return sweepVerdict(sr)
			},
		}
	}
	return []portfolio.Engine{
		mkSAT("sat-a", o.Seed+1),
		mkSAT("sat-b", o.Seed+77),
		{
			Name: "bdd",
			Run: func(m *aig.AIG, stop <-chan struct{}) (portfolio.Verdict, []bool) {
				equal, cex, err := bddCheck(m)
				if err != nil {
					return portfolio.Undecided, nil
				}
				if equal {
					return portfolio.Equivalent, nil
				}
				return portfolio.NotEquivalent, cex
			},
		},
	}
}

// bddCheck bounds the BDD portfolio member so a blowup case (multipliers)
// yields "undecided" instead of unbounded memory growth.
func bddCheck(m *aig.AIG) (bool, []bool, error) {
	return bdd.CheckMiter(m, 1<<21)
}

func sweepVerdict(sr satsweep.Result) (portfolio.Verdict, []bool) {
	switch sr.Outcome {
	case satsweep.Equivalent:
		return portfolio.Equivalent, nil
	case satsweep.NotEquivalent:
		return portfolio.NotEquivalent, sr.CEX
	}
	return portfolio.Undecided, nil
}

// FormatTable2 renders rows in the layout of the paper's Table II, with
// the geomean speedups of the final line.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %9s %7s | %10s %10s | %10s %8s %10s %10s | %9s %9s\n",
		"Benchmark", "#PIs", "#POs", "#Nodes", "Levels",
		"ABC(s)", "Cfm(s)", "GPU(s)", "Red(%)", "SAT(s)", "Total(s)", "vs.ABC", "vs.Cfm")
	var logABC, logCfm float64
	solvedAlone := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %8d %9d %7d | %10.3f %10.3f | %10.3f %8.1f %10.3f %10.3f | %8.2fx %8.2fx\n",
			r.Case, r.PIs, r.POs, r.Nodes, r.Levels,
			r.ABCTime.Seconds(), r.CfmTime.Seconds(),
			r.GPUTime.Seconds(), r.ReducedPct, r.SATAfter.Seconds(), r.TotalOurs.Seconds(),
			r.SpeedupABC, r.SpeedupCfm)
		logABC += math.Log(r.SpeedupABC)
		logCfm += math.Log(r.SpeedupCfm)
		if r.ReducedPct >= 100 {
			solvedAlone++
		}
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-18s %8s %8s %9s %7s | %10s %10s | %10s %8s %10s %10s | %8.2fx %8.2fx\n",
		"Geomean", "", "", "", "", "", "", "", "", "", "",
		math.Exp(logABC/n), math.Exp(logCfm/n))
	fmt.Fprintf(&b, "\nsim engine fully proved %d of %d cases on its own (100%% reduction)\n",
		solvedAlone, len(rows))
	return b.String()
}

// Figure6Row reports the phase runtime breakdown of one case.
type Figure6Row struct {
	Case                Case
	PTime, GTime, LTime time.Duration
	Total               time.Duration
}

// Percent returns the P/G/L percentages.
func (r Figure6Row) Percent() (p, g, l float64) {
	if r.Total <= 0 {
		return 0, 0, 0
	}
	t := float64(r.Total)
	return 100 * float64(r.PTime) / t, 100 * float64(r.GTime) / t, 100 * float64(r.LTime) / t
}

// RunFigure6Case measures the phase breakdown of the simulation engine.
func RunFigure6Case(inst *Instance, o Options) Figure6Row {
	res := core.CheckMiter(inst.Miter, o.simConfig(o.dev()))
	row := Figure6Row{Case: inst.Case}
	for _, ph := range res.Phases {
		switch ph.Kind {
		case core.PhaseP:
			row.PTime += ph.Duration
		case core.PhaseG:
			row.GTime += ph.Duration
		default:
			row.LTime += ph.Duration
		}
	}
	row.Total = row.PTime + row.GTime + row.LTime
	return row
}

// FormatFigure6 renders the breakdown as the textual analogue of Fig. 6.
func FormatFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %8s   %s\n", "Benchmark", "P(%)", "G(%)", "L(%)", "bar (P=#, G=+, L=-)")
	for _, r := range rows {
		p, g, l := r.Percent()
		fmt.Fprintf(&b, "%-18s %8.1f %8.1f %8.1f   %s\n", r.Case, p, g, l, breakdownBar(p, g, l))
	}
	return b.String()
}

func breakdownBar(p, g, l float64) string {
	const width = 40
	np := int(p / 100 * width)
	ng := int(g / 100 * width)
	nl := width - np - ng
	if nl < 0 {
		nl = 0
	}
	return strings.Repeat("#", np) + strings.Repeat("+", ng) + strings.Repeat("-", nl)
}

// Figure7Row reports, for one case, the SAT sweeping time on the
// intermediate miters after the P, P+G and P+G+L flow prefixes,
// normalised by the standalone SAT time on the original miter.
type Figure7Row struct {
	Case       Case
	Standalone time.Duration
	AfterP     float64 // normalised
	AfterPG    float64
	AfterPGL   float64
}

// RunFigure7Case reproduces the Figure 7 experiment for one case.
func RunFigure7Case(inst *Instance, o Options) Figure7Row {
	row := Figure7Row{Case: inst.Case}

	stStart := time.Now()
	satsweep.CheckMiter(inst.Miter, satsweep.Options{Dev: o.dev(), Seed: o.Seed})
	row.Standalone = time.Since(stStart)

	cfg := o.simConfig(o.dev())
	cfg.KeepSnapshots = true
	res := core.CheckMiter(inst.Miter, cfg)

	norm := func(m *aig.AIG) float64 {
		if m == nil {
			return math.NaN()
		}
		if miter.IsProved(m) {
			return 0
		}
		s := time.Now()
		satsweep.CheckMiter(m, satsweep.Options{Dev: o.dev(), Seed: o.Seed})
		return ratio(time.Since(s), row.Standalone)
	}
	row.AfterP = norm(res.Snapshots["P"])
	row.AfterPG = norm(res.Snapshots["PG"])
	row.AfterPGL = norm(res.Snapshots["PGL"])
	return row
}

// FormatFigure7 renders the normalised flow comparison of Fig. 7.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s | %8s %8s %8s\n", "Benchmark", "standalone", "P", "PG", "PGL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %11.3fs | %8.3f %8.3f %8.3f\n",
			r.Case, r.Standalone.Seconds(), r.AfterP, r.AfterPG, r.AfterPGL)
	}
	b.WriteString("\n(entries are SAT-sweeping time on the miter remaining after each flow\n prefix, normalised by standalone SAT sweeping; 0.000 = fully proved)\n")
	return b.String()
}

// SortRowsPaperOrder keeps rows in the paper's benchmark order.
func SortRowsPaperOrder(rows []Table2Row) {
	order := map[string]int{}
	for i, n := range gen.Names() {
		order[n] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return order[rows[i].Case.Name] < order[rows[j].Case.Name]
	})
}
