package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"simsweep/internal/aig"
)

// Multiplier builds the n×n → 2n array multiplier benchmark.
func Multiplier(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "multiplier"
	a := Inputs(g, width)
	b := Inputs(g, width)
	AddPOs(g, Mul(g, a, b))
	return g, nil
}

// SquareCircuit builds the n → 2n squarer benchmark.
func SquareCircuit(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "square"
	AddPOs(g, Square(g, Inputs(g, width)))
	return g, nil
}

// SqrtCircuit builds the n → n/2 restoring square-root benchmark.
func SqrtCircuit(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "sqrt"
	AddPOs(g, Sqrt(g, Inputs(g, width)))
	return g, nil
}

// Hyp builds the hypotenuse benchmark: ⌊√(a² + b²)⌋ over two n-bit
// operands — squarers feeding an adder feeding the deep sqrt recurrence,
// the most level-heavy family of the suite.
func Hyp(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "hyp"
	a := Inputs(g, width)
	b := Inputs(g, width)
	sa := Square(g, a)
	sb := Square(g, b)
	sum, carry := Add(g, sa, sb)
	full := make(BV, len(sum)+1)
	copy(full, sum)
	full[len(sum)] = carry
	AddPOs(g, Sqrt(g, full))
	return g, nil
}

// Log2 builds the integer-part-and-fraction log2 benchmark: a leading-one
// normaliser (priority logic plus barrel shifter) produces the exponent,
// and a multiplicative polynomial on the normalised mantissa refines the
// fraction — the normaliser/multiplier mix of the EPFL log2.
func Log2(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 4); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "log2"
	x := Inputs(g, width)
	norm, shift := barrelShiftToMSB(g, x)
	// Exponent = width-1 − shift = bitwise complement of shift offset.
	for _, s := range shift {
		g.AddPO(s.Not())
	}
	// Mantissa m: the bits below the leading one, as a fraction. The
	// fraction of log2(1+m) is approximated by m + m·(1−m)/2 ≈
	// m/2·(3−m): one squarer-grade multiplier on the datapath.
	frac := width - 1
	if frac > 16 {
		frac = 16 // keep the polynomial multiplier bounded at scale
	}
	m := norm.Shr(len(norm) - 1 - frac)[:frac]
	three := Constant(3<<uint(frac-2), frac)
	threeMinus, _ := Sub(g, three, m.Shr(2))
	prod := Mul(g, m, threeMinus)
	for i := 0; i < frac; i++ {
		g.AddPO(prod[frac+i-1])
	}
	return g, nil
}

// Sin builds the fixed-point sine benchmark: a Taylor datapath
// x − x³/6 + x⁵/120 over a fraction of the input width, dominated by the
// cascaded multipliers like the EPFL sin.
func Sin(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 4); err != nil {
		return nil, err
	}
	if width > 16 {
		width = 16 // multiplier cascade grows as width²; cap per instance
	}
	g := aig.New()
	g.Name = "sin"
	x := Inputs(g, width)
	x2 := Mul(g, x, x)[:width]       // x², keep fixed-point width
	x3 := Mul(g, x2, x)[:width]      // x³
	x5 := Mul(g, x3, x2.Zext(width)) // x⁵ (double width, truncated below)
	// 1/6 ≈ 2⁻³ + 2⁻⁵ + 2⁻⁷; 1/120 ≈ 2⁻⁷ + 2⁻⁹ (shift-add constants).
	x3d6, _ := Add(g, x3.Shr(3), x3.Shr(5))
	x3d6, _ = Add(g, x3d6, x3.Shr(7))
	x5t := x5[:width]
	x5d120, _ := Add(g, x5t.Shr(7), x5t.Shr(9))
	t, _ := Sub(g, x, x3d6)
	s, _ := Add(g, t, x5d120)
	AddPOs(g, s)
	return g, nil
}

// Voter builds the majority-of-n benchmark: a popcount tree and a
// threshold comparator (n odd; the EPFL voter is majority of 1001).
func Voter(n int) (*aig.AIG, error) {
	if err := checkWidth(n, 3); err != nil {
		return nil, err
	}
	if n%2 == 0 {
		n++
	}
	g := aig.New()
	g.Name = "voter"
	in := make([]aig.Lit, n)
	for i := range in {
		in[i] = g.AddPI()
	}
	count := PopCount(g, in)
	threshold := Constant(uint64(n/2+1), len(count))
	g.AddPO(Gte(g, count, threshold))
	return g, nil
}

// Adder builds a simple n-bit ripple adder (quickstart material; also the
// substrate of several integration tests).
func Adder(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 1); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "adder"
	a := Inputs(g, width)
	b := Inputs(g, width)
	sum, carry := Add(g, a, b)
	AddPOs(g, sum)
	g.AddPO(carry)
	return g, nil
}

// ControlStyle selects the flavour of a generated control fabric.
type ControlStyle int

// Control fabric flavours, mirroring the two IWLS 2005 control benchmarks
// of the evaluation: AC97 (very wide, very shallow — levels ≈ 12) and VGA
// (wide with moderate depth — levels ≈ 24).
const (
	StyleAC97 ControlStyle = iota
	StyleVGA
)

// Control builds a deterministic pseudo-random control fabric: decoders,
// muxes, parity chains and comparators over word-sliced inputs, with
// bounded logic depth and wide input/output interfaces. The same seed
// always yields the same netlist.
func Control(style ControlStyle, words int, seed int64) (*aig.AIG, error) {
	if err := checkWidth(words, 1); err != nil {
		return nil, err
	}
	depth := 12
	name := "ac97_ctrl"
	if style == StyleVGA {
		depth = 24
		name = "vga_lcd"
	}
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	g.Name = name

	const wordBits = 8
	ins := make([]BV, words)
	for w := range ins {
		ins[w] = Inputs(g, wordBits)
	}

	// Layered random gadgets: each layer draws from the previous two.
	prev := ins
	layers := depth / 3
	if layers < 2 {
		layers = 2
	}
	for layer := 0; layer < layers; layer++ {
		next := make([]BV, len(prev))
		for w := range next {
			a := prev[rng.Intn(len(prev))]
			b := prev[rng.Intn(len(prev))]
			sel := a[rng.Intn(wordBits)]
			switch rng.Intn(4) {
			case 0: // mux word
				next[w] = Mux(g, sel, a, b)
			case 1: // bitwise xor
				out := make(BV, wordBits)
				for i := range out {
					out[i] = g.Xor(a[i], b[(i+1)%wordBits])
				}
				next[w] = out
			case 2: // decoder slice: one-hot of a's low 3 bits, masked by b
				out := make(BV, wordBits)
				for i := range out {
					m0 := a[0].NotIf(i&1 == 0)
					m1 := a[1].NotIf(i&2 == 0)
					m2 := a[2].NotIf(i&4 == 0)
					out[i] = g.And(g.And(m0, m1), g.And(m2, b[i]))
				}
				next[w] = out
			default: // equality compare fanned out
				eq := aig.True
				for i := 0; i < wordBits; i++ {
					eq = g.And(eq, g.Xnor(a[i], b[i]))
				}
				out := make(BV, wordBits)
				for i := range out {
					out[i] = g.Mux(eq, a[i], b[i].Not())
				}
				next[w] = out
			}
		}
		prev = next
	}
	for _, word := range prev {
		AddPOs(g, word)
	}
	return g, nil
}

// Names lists the benchmark families of Table II, in the paper's order.
func Names() []string {
	return []string{
		"hyp", "log2", "multiplier", "sqrt", "square",
		"voter", "sin", "ac97_ctrl", "vga_lcd",
	}
}

// Benchmark builds a named benchmark family at the given scale. Scale
// semantics: datapath families use it as bit width, voter as 8·scale+1
// voters, control fabrics as word count.
func Benchmark(name string, scale int) (*aig.AIG, error) {
	switch name {
	case "hyp":
		return Hyp(scale)
	case "log2":
		return Log2(scale)
	case "multiplier":
		return Multiplier(scale)
	case "sqrt":
		return SqrtCircuit(scale)
	case "square":
		return SquareCircuit(scale)
	case "voter":
		return Voter(8*scale + 1)
	case "sin":
		return Sin(scale)
	case "ac97_ctrl":
		return Control(StyleAC97, 4*scale, 97)
	case "vga_lcd":
		return Control(StyleVGA, 4*scale, 64)
	case "adder":
		return Adder(scale)
	}
	if g, err, ok := extraBenchmark(name, scale); ok {
		return g, err
	}
	switch name {
	default:
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("gen: unknown benchmark %q (known: %v)", name, known)
	}
}
