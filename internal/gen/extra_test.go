package gen

import (
	"math/rand"
	"testing"
)

func TestKoggeStoneMatchesRipple(t *testing.T) {
	const w = 7
	ks, err := KoggeStoneAdder(w)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Adder(w)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Level() >= rc.Level() {
		t.Fatalf("Kogge-Stone level %d not below ripple level %d", ks.Level(), rc.Level())
	}
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 200; k++ {
		a := rng.Uint64() & ((1 << w) - 1)
		b := rng.Uint64() & ((1 << w) - 1)
		got := evalUint(ks, []uint64{a, b}, []int{w, w}, 0, w+1)
		want := evalUint(rc, []uint64{a, b}, []int{w, w}, 0, w+1)
		if got != want || got != a+b {
			t.Fatalf("%d+%d: ks=%d rc=%d", a, b, got, want)
		}
	}
}

func TestBarrelShifter(t *testing.T) {
	const w = 8
	g, err := BarrelShifter(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 100; k++ {
		x := rng.Uint64() & 0xFF
		s := rng.Uint64() & 7
		got := evalUint(g, []uint64{x, s}, []int{8, 3}, 0, 8)
		want := (x << s) & 0xFF
		if got != want {
			t.Fatalf("%d << %d = %d, want %d", x, s, got, want)
		}
	}
}

func TestALUAllOps(t *testing.T) {
	const w = 6
	g, err := ALU(w)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1<<w - 1)
	rng := rand.New(rand.NewSource(8))
	for k := 0; k < 200; k++ {
		a := rng.Uint64() & mask
		b := rng.Uint64() & mask
		op := rng.Uint64() & 3
		got := evalUint(g, []uint64{a, b, op}, []int{w, w, 2}, 0, w)
		var want uint64
		switch ALUOp(op) {
		case ALUAdd:
			want = (a + b) & mask
		case ALUSub:
			want = (a - b) & mask
		case ALUAnd:
			want = a & b
		case ALUXor:
			want = a ^ b
		}
		if got != want {
			t.Fatalf("op=%d a=%d b=%d: got %d want %d", op, a, b, got, want)
		}
	}
}

func TestBoothMatchesArrayMultiplier(t *testing.T) {
	const w = 6
	booth, err := MultiplierBooth(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 300; k++ {
		a := rng.Uint64() & ((1 << w) - 1)
		b := rng.Uint64() & ((1 << w) - 1)
		got := evalUint(booth, []uint64{a, b}, []int{w, w}, 0, 2*w)
		if got != a*b {
			t.Fatalf("%d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestExtraNamesViaBenchmark(t *testing.T) {
	for _, name := range ExtraNames() {
		g, err := Benchmark(name, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumAnds() == 0 {
			t.Fatalf("%s: empty", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
