package gen

import (
	"fmt"

	"simsweep/internal/aig"
)

// Additional circuit families beyond the paper's nine: structurally
// diverse arithmetic used by the examples and by tests that need two
// genuinely different architectures of the same function (adder vs
// Kogge-Stone, shifter, ALU). These exercise the checkers on real
// architectural gaps rather than optimizer-induced ones.

// KoggeStoneAdder builds an n-bit parallel-prefix adder: same function as
// Adder(n) with a logarithmic-depth carry network — the classic "same
// spec, different architecture" CEC workload.
func KoggeStoneAdder(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 1); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "ksadder"
	a := Inputs(g, width)
	b := Inputs(g, width)

	// Generate/propagate pairs.
	gen := make(BV, width)
	prop := make(BV, width)
	for i := 0; i < width; i++ {
		gen[i] = g.And(a[i], b[i])
		prop[i] = g.Xor(a[i], b[i])
	}
	// Prefix network: (g, p) ∘ (g', p') = (g | p&g', p&p').
	gg := append(BV(nil), gen...)
	pp := append(BV(nil), prop...)
	for d := 1; d < width; d <<= 1 {
		ng := append(BV(nil), gg...)
		np := append(BV(nil), pp...)
		for i := d; i < width; i++ {
			ng[i] = g.Or(gg[i], g.And(pp[i], gg[i-d]))
			np[i] = g.And(pp[i], pp[i-d])
		}
		gg, pp = ng, np
	}
	// Sum bits: s_i = p_i ⊕ carry_{i-1}; carry_i = gg_i.
	g.AddPO(prop[0])
	for i := 1; i < width; i++ {
		g.AddPO(g.Xor(prop[i], gg[i-1]))
	}
	g.AddPO(gg[width-1])
	return g, nil
}

// BarrelShifter builds an n-bit logical left shifter with a log2(n)-bit
// shift amount — mux-tree structure, wide and shallow.
func BarrelShifter(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "barrel"
	x := Inputs(g, width)
	stages := 0
	for 1<<uint(stages) < width {
		stages++
	}
	sh := Inputs(g, stages)
	cur := x
	for s := 0; s < stages; s++ {
		cur = Mux(g, sh[s], cur.Shl(1<<uint(s)), cur)
	}
	AddPOs(g, cur)
	return g, nil
}

// ALUOp identifies an operation of the generated ALU.
type ALUOp int

// ALU operations, selected by a 2-bit opcode (00 add, 01 sub, 10 and,
// 11 xor).
const (
	ALUAdd ALUOp = iota
	ALUSub
	ALUAnd
	ALUXor
)

// ALU builds an n-bit 4-function ALU: two operands, a 2-bit opcode, n+1
// result bits (result plus carry/borrow flag).
func ALU(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "alu"
	a := Inputs(g, width)
	b := Inputs(g, width)
	op := Inputs(g, 2)

	sum, carry := Add(g, a, b)
	diff, borrow := Sub(g, a, b)
	band := make(BV, width)
	bxor := make(BV, width)
	for i := 0; i < width; i++ {
		band[i] = g.And(a[i], b[i])
		bxor[i] = g.Xor(a[i], b[i])
	}
	// op[1] selects logic vs arithmetic; op[0] selects within.
	arith := Mux(g, op[0], diff, sum)
	logic := Mux(g, op[0], bxor, band)
	out := Mux(g, op[1], logic, arith)
	flag := g.And(op[1].Not(), g.Mux(op[0], borrow, carry))
	AddPOs(g, out)
	g.AddPO(flag)
	return g, nil
}

// MultiplierBooth builds an n×n multiplier with radix-2 Booth-style
// recoding of the second operand — functionally identical to Multiplier
// but with a different partial-product structure (add/subtract rows).
func MultiplierBooth(width int) (*aig.AIG, error) {
	if err := checkWidth(width, 2); err != nil {
		return nil, err
	}
	g := aig.New()
	g.Name = "boothmul"
	a := Inputs(g, width)
	b := Inputs(g, width)
	w := 2 * width
	ax := a.Zext(w)
	acc := Constant(0, w)
	// Radix-2 Booth: digit i is b[i-1] - b[i] ∈ {-1, 0, +1}.
	prev := aig.Lit(aig.False)
	for i := 0; i < width; i++ {
		plusOne := g.And(prev, b[i].Not())  // digit +1
		minusOne := g.And(prev.Not(), b[i]) // digit −1
		shifted := ax.Shl(i)
		added, _ := Add(g, acc, shifted.And(g, plusOne))
		subbed, _ := Sub(g, added, shifted.And(g, minusOne))
		acc = subbed
		prev = b[i]
	}
	// Final correction: if b's MSB was 1, Booth leaves digit +1 at
	// weight width.
	final, _ := Add(g, acc, ax.Shl(width).And(g, prev))
	AddPOs(g, final)
	return g, nil
}

// ExtraNames lists the additional families.
func ExtraNames() []string {
	return []string{"ksadder", "barrel", "alu", "boothmul", "boothmiter", "boothmiterneq"}
}

// init-time hook: extend Benchmark's name space via a second lookup.
func extraBenchmark(name string, scale int) (*aig.AIG, error, bool) {
	switch name {
	case "ksadder":
		g, err := KoggeStoneAdder(scale)
		return g, err, true
	case "barrel":
		g, err := BarrelShifter(scale)
		return g, err, true
	case "alu":
		g, err := ALU(scale)
		return g, err, true
	case "boothmul":
		g, err := MultiplierBooth(scale)
		return g, err, true
	case "boothmiter":
		g, err := BoothArrayMiter(scale, false)
		return g, err, true
	case "boothmiterneq":
		g, err := BoothArrayMiter(scale, true)
		return g, err, true
	}
	return nil, fmt.Errorf("unknown"), false
}
