// Package gen generates the benchmark circuits of the evaluation: the
// arithmetic families of the EPFL combinational suite (multiplier, square,
// sqrt, hyp, log2, sin, voter) and IWLS-2005-style control fabrics
// (ac97_ctrl, vga_lcd), all as structural AIG netlists, plus the "double"
// enlargement the paper applies. The real suites are not redistributable
// inputs of this build, so each family is regenerated from its defining
// arithmetic at configurable bit widths — same functional shape, same
// structural character (deep carry chains, wide shallow control, majority
// trees), scaled to CPU-sized experiments.
package gen

import (
	"fmt"

	"simsweep/internal/aig"
)

// BV is a little-endian bit vector of AIG literals (bit 0 first).
type BV []aig.Lit

// Inputs appends width fresh primary inputs.
func Inputs(g *aig.AIG, width int) BV {
	bv := make(BV, width)
	for i := range bv {
		bv[i] = g.AddPI()
	}
	return bv
}

// Constant builds the bit vector of an unsigned constant.
func Constant(value uint64, width int) BV {
	bv := make(BV, width)
	for i := range bv {
		if (value>>uint(i))&1 == 1 {
			bv[i] = aig.True
		} else {
			bv[i] = aig.False
		}
	}
	return bv
}

// Zext zero-extends (or truncates) the vector to width bits.
func (b BV) Zext(width int) BV {
	out := make(BV, width)
	for i := range out {
		if i < len(b) {
			out[i] = b[i]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// fullAdder returns (sum, carry).
func fullAdder(g *aig.AIG, a, b, c aig.Lit) (aig.Lit, aig.Lit) {
	axb := g.Xor(a, b)
	sum := g.Xor(axb, c)
	carry := g.Or(g.And(a, b), g.And(axb, c))
	return sum, carry
}

// Add returns a+b (same width as the longer input) and the carry-out,
// using a ripple-carry structure.
func Add(g *aig.AIG, a, b BV) (BV, aig.Lit) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	a, b = a.Zext(n), b.Zext(n)
	out := make(BV, n)
	carry := aig.False
	for i := 0; i < n; i++ {
		out[i], carry = fullAdder(g, a[i], b[i], carry)
	}
	return out, carry
}

// Sub returns a−b and the borrow-out (1 when a < b).
func Sub(g *aig.AIG, a, b BV) (BV, aig.Lit) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	a, b = a.Zext(n), b.Zext(n)
	out := make(BV, n)
	carry := aig.True // two's complement: a + ~b + 1
	for i := 0; i < n; i++ {
		out[i], carry = fullAdder(g, a[i], b[i].Not(), carry)
	}
	return out, carry.Not()
}

// Mux returns s ? t : e bitwise.
func Mux(g *aig.AIG, s aig.Lit, t, e BV) BV {
	n := len(t)
	if len(e) > n {
		n = len(e)
	}
	t, e = t.Zext(n), e.Zext(n)
	out := make(BV, n)
	for i := range out {
		out[i] = g.Mux(s, t[i], e[i])
	}
	return out
}

// And returns the bitwise conjunction of a with a single control literal.
func (b BV) And(g *aig.AIG, s aig.Lit) BV {
	out := make(BV, len(b))
	for i := range out {
		out[i] = g.And(b[i], s)
	}
	return out
}

// Shl returns the vector shifted left by a constant, keeping width.
func (b BV) Shl(k int) BV {
	out := make(BV, len(b))
	for i := range out {
		if i >= k {
			out[i] = b[i-k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// Shr returns the vector shifted right by a constant, keeping width.
func (b BV) Shr(k int) BV {
	out := make(BV, len(b))
	for i := range out {
		if i+k < len(b) {
			out[i] = b[i+k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// Mul returns the 2n-bit product of two n-bit vectors via an array
// multiplier (rows of partial products reduced by ripple adders — the
// structure of the EPFL "multiplier" benchmark family).
func Mul(g *aig.AIG, a, b BV) BV {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	a, b = a.Zext(n), b.Zext(n)
	acc := Constant(0, 2*n)
	for i := 0; i < n; i++ {
		pp := a.And(g, b[i]).Zext(2 * n).Shl(i)
		acc, _ = Add(g, acc, pp)
	}
	return acc
}

// Square returns the 2n-bit square of an n-bit vector. The partial-product
// triangle is folded (a_i·a_j appears twice for i≠j), giving a circuit
// smaller than Mul(x,x) and structurally distinct from it.
func Square(g *aig.AIG, a BV) BV {
	n := len(a)
	acc := Constant(0, 2*n)
	for i := 0; i < n; i++ {
		// Diagonal term a_i·a_i = a_i at weight 2i.
		diag := Constant(0, 2*n)
		diag[2*i] = a[i]
		acc, _ = Add(g, acc, diag)
		for j := i + 1; j < n; j++ {
			if 2*n <= i+j+1 {
				continue
			}
			// Cross term 2·a_i·a_j at weight i+j+1.
			cross := Constant(0, 2*n)
			cross[i+j+1] = g.And(a[i], a[j])
			acc, _ = Add(g, acc, cross)
		}
	}
	return acc
}

// Gte returns a ≥ b for equal-width vectors.
func Gte(g *aig.AIG, a, b BV) aig.Lit {
	_, borrow := Sub(g, a, b)
	return borrow.Not()
}

// Sqrt returns the floor square root (n/2 bits, rounded up) of an n-bit
// vector, via the restoring digit-recurrence algorithm — the structure of
// the EPFL "sqrt" benchmark, with its long sequential-like level chain.
func Sqrt(g *aig.AIG, x BV) BV {
	n := len(x)
	if n%2 == 1 {
		x = x.Zext(n + 1)
		n++
	}
	m := n / 2
	root := Constant(0, m)
	rem := Constant(0, n+2)
	for i := m - 1; i >= 0; i-- {
		// Bring down two bits of x.
		rem = rem.Shl(2)
		rem[1] = x[2*i+1]
		rem[0] = x[2*i]
		// Trial subtrahend: (root << 2) | 1.
		trial := root.Zext(n + 2).Shl(2)
		trial[0] = aig.True
		diff, borrow := Sub(g, rem, trial)
		fits := borrow.Not()
		rem = Mux(g, fits, diff, rem)
		root = root.Shl(1)
		root[0] = fits
	}
	return root
}

// PopCount returns the ⌈log2(n+1)⌉-bit population count of the literals,
// built as a balanced adder tree (the EPFL "voter" reduction structure).
func PopCount(g *aig.AIG, in []aig.Lit) BV {
	if len(in) == 0 {
		return Constant(0, 1)
	}
	vecs := make([]BV, len(in))
	for i, l := range in {
		vecs[i] = BV{l}
	}
	for len(vecs) > 1 {
		var next []BV
		for i := 0; i+1 < len(vecs); i += 2 {
			sum, carry := Add(g, vecs[i], vecs[i+1])
			v := make(BV, len(sum)+1)
			copy(v, sum)
			v[len(sum)] = carry
			next = append(next, v)
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0]
}

func (b BV) clone() BV { return append(BV(nil), b...) }

// AddPOs registers every bit of the vector as a primary output.
func AddPOs(g *aig.AIG, b BV) {
	for _, l := range b {
		g.AddPO(l)
	}
}

// leadingOne returns, for an n-bit vector, a one-hot vector marking the
// most significant set bit, plus a "zero" flag.
func leadingOne(g *aig.AIG, x BV) (BV, aig.Lit) {
	n := len(x)
	oneHot := make(BV, n)
	noneAbove := aig.True
	for i := n - 1; i >= 0; i-- {
		oneHot[i] = g.And(noneAbove, x[i])
		noneAbove = g.And(noneAbove, x[i].Not())
	}
	return oneHot, noneAbove
}

// barrelShiftToMSB left-shifts x so its leading one lands at the top bit,
// returning the normalised vector and the binary shift amount. This is the
// normalisation stage of the log2 datapath.
func barrelShiftToMSB(g *aig.AIG, x BV) (BV, BV) {
	n := len(x)
	stages := 0
	for 1<<uint(stages) < n {
		stages++
	}
	cur := x.clone()
	shift := make(BV, stages)
	for s := stages - 1; s >= 0; s-- {
		k := 1 << uint(s)
		// Shift left by k when the top k bits are all zero.
		topZero := aig.True
		for i := n - k; i < n; i++ {
			if i >= 0 {
				topZero = g.And(topZero, cur[i].Not())
			}
		}
		shifted := cur.Shl(k)
		cur = Mux(g, topZero, shifted, cur)
		shift[s] = topZero
	}
	return cur, shift
}

func checkWidth(width, min int) error {
	if width < min {
		return fmt.Errorf("gen: width %d below minimum %d", width, min)
	}
	return nil
}
