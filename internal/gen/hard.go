package gen

import (
	"fmt"
	"math/bits"

	"simsweep/internal/aig"
	"simsweep/internal/miter"
)

// BoothArrayMiter builds the adversarial near-miss miter of a width-bit
// array multiplier (Multiplier) against a radix-2 Booth multiplier
// (MultiplierBooth) — the workload class where simulation-based sweeping
// finds no internal equivalences to merge and a monolithic SAT call blows
// a tight conflict budget.
//
// With flip false the miter is equivalent by construction: both sides
// compute the same product. With flip true, one AND gate of the Booth side
// has a fanin complemented before the miter is built. The gate is chosen
// deterministically by bit-parallel simulation over every candidate: among
// the flips with a confirmed differing input pattern, the one observable
// on the fewest sampled patterns wins. The result is a guaranteed-NEQ
// miter whose counter-examples are rare — a needle that random simulation
// under a tight budget is unlikely to hit, while a decision procedure
// (decomposed SAT in particular) finds it reliably.
func BoothArrayMiter(width int, flip bool) (*aig.AIG, error) {
	array, err := Multiplier(width)
	if err != nil {
		return nil, err
	}
	booth, err := MultiplierBooth(width)
	if err != nil {
		return nil, err
	}
	if flip {
		target, err := rarestFlip(booth)
		if err != nil {
			return nil, err
		}
		booth = flipFanin(booth, target)
	}
	m, err := miter.Build(array, booth)
	if err != nil {
		return nil, err
	}
	if flip {
		m.Name = fmt.Sprintf("boothmiterneq%d", width)
	} else {
		m.Name = fmt.Sprintf("boothmiter%d", width)
	}
	return m, nil
}

// rarestFlip scans every AND gate of g and returns the id whose
// fanin-complement flip changes the circuit function on the fewest (but at
// least one) sampled input patterns. Sampling is exhaustive up to 13 PIs
// and a fixed 8192-pattern deterministic random set beyond, so the choice
// — and the guarantee that the flip is a real functional change — is
// reproducible.
func rarestFlip(g *aig.AIG) (int, error) {
	pis := flipPatterns(g.NumPIs())
	base := poWords(g, simFlip(g, pis, -1))
	best, bestCount := -1, -1
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		flipped := poWords(g, simFlip(g, pis, id))
		count := 0
		for w := range base {
			for k := range base[w] {
				count += bits.OnesCount64(base[w][k] ^ flipped[w][k])
			}
		}
		if count > 0 && (bestCount < 0 || count < bestCount) {
			best, bestCount = id, count
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("gen: no observable single-gate flip in %q", g.Name)
	}
	return best, nil
}

// flipPatterns builds the per-PI pattern words of the flip scan:
// exhaustive enumeration of the input space up to 13 PIs (padded by
// wrap-around below 6), a deterministic splitmix64 sample beyond.
func flipPatterns(numPIs int) [][]uint64 {
	var words int
	exhaustive := numPIs <= 13
	if exhaustive {
		total := 1 << uint(numPIs)
		words = (total + 63) / 64
		if words == 0 {
			words = 1
		}
	} else {
		words = 128 // 8192 random patterns
	}
	pis := make([][]uint64, numPIs)
	for i := range pis {
		pis[i] = make([]uint64, words)
	}
	if exhaustive {
		mask := (1 << uint(numPIs)) - 1
		for w := 0; w < words; w++ {
			for bit := 0; bit < 64; bit++ {
				p := (w*64 + bit) & mask // wrap-around padding below 64 patterns
				for i := 0; i < numPIs; i++ {
					if p&(1<<uint(i)) != 0 {
						pis[i][w] |= 1 << uint(bit)
					}
				}
			}
		}
		return pis
	}
	state := uint64(0x9e3779b97f4a7c15)
	for i := range pis {
		for w := range pis[i] {
			state += 0x9e3779b97f4a7c15
			x := state
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			pis[i][w] = x
		}
	}
	return pis
}

// simFlip bit-parallel-simulates g over the given per-PI pattern words,
// complementing the first fanin of the target AND gate (target < 0: none),
// and returns the per-node value words.
func simFlip(g *aig.AIG, pis [][]uint64, target int) [][]uint64 {
	words := len(pis[0])
	vals := make([][]uint64, g.NumNodes())
	vals[0] = make([]uint64, words) // constant false
	for i := 0; i < g.NumPIs(); i++ {
		vals[g.PIID(i)] = pis[i]
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		a, b := vals[f0.ID()], vals[f1.ID()]
		inv0, inv1 := f0.IsCompl(), f1.IsCompl()
		if id == target {
			inv0 = !inv0
		}
		v := make([]uint64, words)
		for w := 0; w < words; w++ {
			x, y := a[w], b[w]
			if inv0 {
				x = ^x
			}
			if inv1 {
				y = ^y
			}
			v[w] = x & y
		}
		vals[id] = v
	}
	return vals
}

// poWords maps simulated node values onto per-PO output words.
func poWords(g *aig.AIG, vals [][]uint64) [][]uint64 {
	out := make([][]uint64, g.NumPOs())
	for i := range out {
		po := g.PO(i)
		src := vals[po.ID()]
		w := make([]uint64, len(src))
		copy(w, src)
		if po.IsCompl() {
			for k := range w {
				w[k] = ^w[k]
			}
		}
		out[i] = w
	}
	return out
}

// flipFanin rebuilds g with the first fanin of the target AND gate
// complemented, re-hashing through the structural table.
func flipFanin(g *aig.AIG, target int) *aig.AIG {
	ng := aig.New()
	ng.Name = g.Name + "-flip"
	mp := make([]aig.Lit, g.NumNodes())
	mp[0] = aig.False
	for i := 0; i < g.NumPIs(); i++ {
		mp[g.PIID(i)] = ng.AddPI()
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		a := mp[f0.ID()].NotIf(f0.IsCompl())
		b := mp[f1.ID()].NotIf(f1.IsCompl())
		if id == target {
			a = a.Not()
		}
		mp[id] = ng.And(a, b)
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(mp[po.ID()].NotIf(po.IsCompl()))
	}
	return ng
}
