package gen

import (
	"math/rand"

	"simsweep/internal/aig"
)

// Random builds a seeded pseudo-random AIG: numAnds gate gadgets (AND, OR,
// XOR, MUX) drawn over numPIs inputs, with numPOs outputs picked from the
// deepest surviving literals. The same parameters and seed always produce
// the same netlist, which makes the generator suitable as a fuzzing
// substrate: the differential harness derives every case from a seed and
// can replay it exactly.
//
// The gadget mix is biased towards recent literals so the graph grows deep
// rather than wide, and operand phases are randomised so complemented edges
// are common. Strashing may merge gadgets, so the final AND count can be
// below numAnds.
func Random(numPIs, numPOs, numAnds int, seed int64) *aig.AIG {
	if numPIs < 1 {
		numPIs = 1
	}
	if numPOs < 1 {
		numPOs = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	g.Name = "random"

	pool := make([]aig.Lit, 0, numPIs+numAnds)
	for i := 0; i < numPIs; i++ {
		pool = append(pool, g.AddPI())
	}
	pick := func() aig.Lit {
		// Bias towards the most recent quarter of the pool.
		var idx int
		if rng.Intn(2) == 0 && len(pool) > 4 {
			q := len(pool) / 4
			idx = len(pool) - 1 - rng.Intn(q)
		} else {
			idx = rng.Intn(len(pool))
		}
		return pool[idx].NotIf(rng.Intn(2) == 1)
	}
	for i := 0; i < numAnds; i++ {
		a, b := pick(), pick()
		var l aig.Lit
		switch rng.Intn(4) {
		case 0:
			l = g.And(a, b)
		case 1:
			l = g.Or(a, b)
		case 2:
			l = g.Xor(a, b)
		default:
			l = g.Mux(pick(), a, b)
		}
		if l.ID() != 0 { // skip gadgets folded to a constant
			pool = append(pool, l)
		}
	}
	for i := 0; i < numPOs; i++ {
		g.AddPO(pick())
	}
	return g
}
