package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"simsweep/internal/aig"
)

// evalBV drives g with packed integers and decodes a bit-slice of the
// outputs as an unsigned integer.
func evalUint(g *aig.AIG, inputs []uint64, widths []int, outLo, outHi int) uint64 {
	in := make([]bool, 0, g.NumPIs())
	for w, width := range widths {
		for i := 0; i < width; i++ {
			in = append(in, (inputs[w]>>uint(i))&1 == 1)
		}
	}
	if len(in) != g.NumPIs() {
		panic("evalUint: width mismatch")
	}
	out := g.Eval(in)
	var v uint64
	for i := outLo; i < outHi && i < len(out); i++ {
		if out[i] {
			v |= 1 << uint(i-outLo)
		}
	}
	return v
}

func TestAdderComputesSum(t *testing.T) {
	g, err := Adder(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 100; k++ {
		a := rng.Uint64() & 63
		b := rng.Uint64() & 63
		got := evalUint(g, []uint64{a, b}, []int{6, 6}, 0, 7)
		if got != a+b {
			t.Fatalf("%d+%d = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestMultiplierComputesProduct(t *testing.T) {
	g, err := Multiplier(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 100; k++ {
		a := rng.Uint64() & 63
		b := rng.Uint64() & 63
		got := evalUint(g, []uint64{a, b}, []int{6, 6}, 0, 12)
		if got != a*b {
			t.Fatalf("%d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestSquareMatchesMultiplier(t *testing.T) {
	g, err := SquareCircuit(6)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 64; a++ {
		got := evalUint(g, []uint64{a}, []int{6}, 0, 12)
		if got != a*a {
			t.Fatalf("%d² = %d, want %d", a, got, a*a)
		}
	}
}

func TestSqrtComputesFloorRoot(t *testing.T) {
	g, err := SqrtCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 256; x++ {
		got := evalUint(g, []uint64{x}, []int{8}, 0, 4)
		want := uint64(math.Sqrt(float64(x)))
		for (want+1)*(want+1) <= x {
			want++
		}
		for want*want > x {
			want--
		}
		if got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestHypComputesHypotenuse(t *testing.T) {
	g, err := Hyp(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 60; k++ {
		a := rng.Uint64() & 31
		b := rng.Uint64() & 31
		got := evalUint(g, []uint64{a, b}, []int{5, 5}, 0, g.NumPOs())
		sq := a*a + b*b
		want := uint64(math.Sqrt(float64(sq)))
		for (want+1)*(want+1) <= sq {
			want++
		}
		for want*want > sq {
			want--
		}
		if got != want {
			t.Fatalf("hyp(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestVoterComputesMajority(t *testing.T) {
	g, err := Voter(9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 200; k++ {
		in := make([]bool, 9)
		ones := 0
		for i := range in {
			in[i] = rng.Intn(2) == 1
			if in[i] {
				ones++
			}
		}
		got := g.Eval(in)[0]
		if got != (ones > 4) {
			t.Fatalf("majority of %v = %v", in, got)
		}
	}
}

func TestPopCountExact(t *testing.T) {
	g := aig.New()
	in := make([]aig.Lit, 7)
	for i := range in {
		in[i] = g.AddPI()
	}
	AddPOs(g, PopCount(g, in))
	for pat := 0; pat < 128; pat++ {
		bits := make([]bool, 7)
		ones := uint64(0)
		for i := range bits {
			bits[i] = (pat>>uint(i))&1 == 1
			if bits[i] {
				ones++
			}
		}
		out := g.Eval(bits)
		var got uint64
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		if got != ones {
			t.Fatalf("popcount(%07b) = %d, want %d", pat, got, ones)
		}
	}
}

func TestLog2AndSinBuild(t *testing.T) {
	// The polynomial datapaths are approximations; assert structure, not
	// numerics: they must build, be deterministic, and be non-trivial.
	for _, name := range []string{"log2", "sin"} {
		g1, err := Benchmark(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := Benchmark(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumAnds() == 0 || g1.NumAnds() != g2.NumAnds() {
			t.Fatalf("%s not deterministic or trivial: %d vs %d ANDs", name, g1.NumAnds(), g2.NumAnds())
		}
		if g1.Level() < 5 {
			t.Fatalf("%s too shallow: %d levels", name, g1.Level())
		}
	}
}

func TestControlFabrics(t *testing.T) {
	ac, err := Control(StyleAC97, 8, 97)
	if err != nil {
		t.Fatal(err)
	}
	vga, err := Control(StyleVGA, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ac.NumAnds() == 0 || vga.NumAnds() == 0 {
		t.Fatal("empty control fabric")
	}
	// AC97-style is shallower than VGA-style, as in the IWLS originals.
	if ac.Level() >= vga.Level() {
		t.Fatalf("ac97 level %d not below vga level %d", ac.Level(), vga.Level())
	}
	// Determinism.
	ac2, _ := Control(StyleAC97, 8, 97)
	if ac.NumAnds() != ac2.NumAnds() {
		t.Fatal("control fabric not deterministic")
	}
	// A different seed gives a different netlist.
	ac3, _ := Control(StyleAC97, 8, 98)
	if ac.NumAnds() == ac3.NumAnds() && ac.Level() == ac3.Level() {
		t.Log("seed change produced same stats (possible but suspicious)")
	}
}

func TestBenchmarkNamesAllBuild(t *testing.T) {
	for _, name := range Names() {
		g, err := Benchmark(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumPOs() == 0 || g.NumAnds() == 0 {
			t.Fatalf("%s: degenerate circuit %s", name, g.Stats())
		}
		if g.Name != name && name != "adder" {
			t.Fatalf("%s: name recorded as %q", name, g.Name)
		}
	}
	if _, err := Benchmark("nonexistent", 4); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestWidthValidation(t *testing.T) {
	if _, err := Multiplier(1); err == nil {
		t.Fatal("width 1 multiplier accepted")
	}
	if _, err := Log2(2); err == nil {
		t.Fatal("width 2 log2 accepted")
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	g := aig.New()
	a := Inputs(g, 8)
	b := Inputs(g, 8)
	sum, _ := Add(g, a, b)
	diff, borrow := Sub(g, sum, b)
	AddPOs(g, diff)
	g.AddPO(borrow)
	// (x + y) − y over 8-bit arithmetic is x again.
	f := func(x, y uint8) bool {
		got := evalUint(g, []uint64{uint64(x), uint64(y)}, []int{8, 8}, 0, 8)
		return got == uint64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
