package service

import (
	"strings"
	"sync"
	"testing"
	"time"

	"simsweep"
	"simsweep/internal/aig"
	"simsweep/internal/gen"
	"simsweep/internal/opt"
)

// Shared test instances, built once: a pair the hybrid engine proves in
// milliseconds, and a pair whose SAT sweep runs for seconds (the "slow
// job" used by the cancellation, timeout and admission tests).
var (
	buildOnce      sync.Once
	fastA, fastB   *aig.AIG
	slowA, slowB   *aig.AIG
	mismA, mismB   *aig.AIG
	buggyA, buggyB *aig.AIG
)

func pairs(t *testing.T) {
	t.Helper()
	buildOnce.Do(func() {
		mk := func(name string, scale int) (*aig.AIG, *aig.AIG) {
			g, err := gen.Benchmark(name, scale)
			if err != nil {
				t.Fatal(err)
			}
			return g, opt.Resyn2(g, nil)
		}
		fastA, fastB = mk("multiplier", 6)
		slowA, slowB = mk("multiplier", 8)
		mismA, _ = mk("adder", 4)
		mismB, _ = mk("adder", 5)
		buggyA, buggyB = mk("multiplier", 6)
		buggyB = buggyB.Copy()
		buggyB.SetPO(3, buggyB.PO(3).Not())
	})
}

// variantPair returns the slow pair with PO i complemented on both sides:
// still equivalent (and still slow for the SAT engine), but structurally
// distinct per i, so the result cache cannot short-circuit it.
func variantPair(i int) (*aig.AIG, *aig.AIG) {
	a, b := slowA.Copy(), slowB.Copy()
	a.SetPO(i, a.PO(i).Not())
	b.SetPO(i, b.PO(i).Not())
	return a, b
}

func waitTerminal(t *testing.T, s *Service, id string, within time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		j, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycleVerdicts(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 2})
	defer s.Close()

	eq, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	neq, err := s.Submit(Request{A: buggyA, B: buggyB})
	if err != nil {
		t.Fatal(err)
	}

	j := waitTerminal(t, s, eq.ID, 30*time.Second)
	if j.State != StateDone || j.Result == nil || j.Result.Outcome != simsweep.Equivalent {
		t.Fatalf("equivalent pair: state=%s result=%+v", j.State, j.Result)
	}
	if j.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	if j.KernelLaunches == 0 {
		t.Fatal("job recorded no kernel launches")
	}
	if j.Started.Before(j.Created) || j.Finished.Before(j.Started) {
		t.Fatalf("timestamps out of order: %v %v %v", j.Created, j.Started, j.Finished)
	}

	j = waitTerminal(t, s, neq.ID, 30*time.Second)
	if j.State != StateDone || j.Result == nil || j.Result.Outcome != simsweep.NotEquivalent {
		t.Fatalf("buggy pair: state=%s", j.State)
	}
	if j.Result.CEX == nil {
		t.Fatal("NotEquivalent without a counter-example")
	}
}

func TestResultCacheHitAndSymmetry(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	first, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, first.ID, 30*time.Second)

	again, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || !again.CacheHit {
		t.Fatalf("resubmission not served from cache: state=%s hit=%v", again.State, again.CacheHit)
	}
	if again.Result.Outcome != simsweep.Equivalent {
		t.Fatalf("cached verdict = %v", again.Result.Outcome)
	}

	swapped, err := s.Submit(Request{A: fastB, B: fastA})
	if err != nil {
		t.Fatal(err)
	}
	if !swapped.CacheHit {
		t.Fatal("(B, A) resubmission missed the symmetric cache entry")
	}

	st := s.Stats()
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

func TestUndecidedRunsAreNotCached(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	// A run cancelled by its deadline must not poison the cache.
	j, err := s.Submit(Request{A: slowA, B: slowB, Engine: simsweep.EngineSAT, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, j.ID, 60*time.Second)
	if got.State != StateTimeout {
		t.Fatalf("state = %s, want timeout", got.State)
	}
	again, err := s.Submit(Request{A: slowA, B: slowB, Engine: simsweep.EngineSAT, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("timed-out (undecided) result was cached")
	}
	waitTerminal(t, s, again.ID, 60*time.Second)
}

func TestDeadlineTimesOutRunningJob(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	j, err := s.Submit(Request{A: slowA, B: slowB, Engine: simsweep.EngineSAT, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, j.ID, 60*time.Second)
	if got.State != StateTimeout {
		t.Fatalf("state = %s, want timeout", got.State)
	}
	if got.Result == nil || got.Result.Outcome != simsweep.Undecided || !got.Result.Stopped {
		t.Fatalf("timed-out job result: %+v", got.Result)
	}

	// The runner and its device must remain usable afterwards.
	next, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, s, next.ID, 30*time.Second); got.State != StateDone {
		t.Fatalf("job after timeout: state=%s", got.State)
	}
}

func TestCancelQueuedAndRunningJobs(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	running, err := s.Submit(Request{A: slowA, B: slowB, Engine: simsweep.EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}

	// The queued job cancels instantly, without ever running.
	cj, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cj.State != StateCancelled {
		t.Fatalf("queued cancel: state=%s", cj.State)
	}
	if got := waitTerminal(t, s, queued.ID, 5*time.Second); got.State != StateCancelled || !got.Started.IsZero() {
		t.Fatalf("cancelled queued job ran: state=%s started=%v", got.State, got.Started)
	}

	// The running job stops cooperatively and promptly.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got := waitTerminal(t, s, running.ID, 30*time.Second)
	if got.State != StateCancelled {
		t.Fatalf("running cancel: state=%s", got.State)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// Cancelling a finished job reports ErrFinished.
	if _, err := s.Cancel(running.ID); err != ErrFinished {
		t.Fatalf("cancel finished job: err=%v", err)
	}
	if _, err := s.Cancel("nope"); err != ErrNotFound {
		t.Fatalf("cancel unknown job: err=%v", err)
	}
}

func TestQueueFullRejectsSubmission(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1, QueueCap: 1})
	defer s.Close()

	// Runner busy with the slow job, queue holding one more: the third
	// submission must bounce with ErrQueueFull (admission control).
	first, err := s.Submit(Request{A: slowA, B: slowB, Engine: simsweep.EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the runner picked the first job up, so the queue slot is
	// genuinely occupied by the second.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := s.Get(first.ID)
		if j.State != StateQueued || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	va, vb := variantPair(0)
	if _, err := s.Submit(Request{A: va, B: vb, Engine: simsweep.EngineSAT}); err != nil {
		t.Fatal(err)
	}
	wa, wb := variantPair(1)
	if _, err := s.Submit(Request{A: wa, B: wb}); err != ErrQueueFull {
		t.Fatalf("overfull submission: err=%v, want ErrQueueFull", err)
	}
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionNeverExceedsK(t *testing.T) {
	pairs(t)
	const k = 2
	s := New(Config{MaxConcurrent: k})
	defer s.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		a, b := variantPair(i)
		j, err := s.Submit(Request{A: a, B: b})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	maxRunning := 0
	for {
		st := s.Stats()
		if st.Running > maxRunning {
			maxRunning = st.Running
		}
		done := true
		for _, id := range ids {
			j, _ := s.Get(id)
			if !j.State.Terminal() {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if maxRunning > k {
		t.Fatalf("observed %d running jobs, admission limit is %d", maxRunning, k)
	}
	for _, id := range ids {
		if j, _ := s.Get(id); j.State != StateDone || j.Result.Outcome != simsweep.Equivalent {
			t.Fatalf("job %s: state=%s", id, j.State)
		}
	}
}

func TestBadAndFailedRequests(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	if _, err := s.Submit(Request{}); err != ErrBadRequest {
		t.Fatalf("empty request: err=%v", err)
	}
	if _, err := s.Submit(Request{A: fastA}); err != ErrBadRequest {
		t.Fatalf("half a pair: err=%v", err)
	}
	if _, err := s.Submit(Request{A: fastA, B: fastB, Miter: fastA}); err != ErrBadRequest {
		t.Fatalf("pair and miter: err=%v", err)
	}

	// Mismatched interfaces surface as a failed job, not a panic.
	j, err := s.Submit(Request{A: mismA, B: mismB})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, j.ID, 30*time.Second)
	if got.State != StateFailed || got.Err == "" {
		t.Fatalf("mismatched pair: state=%s err=%q", got.State, got.Err)
	}
}

func TestMiterModeAndMetricsText(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	m, err := simsweep.BuildMiter(fastA, fastB)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(Request{Miter: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, s, j.ID, 30*time.Second); got.State != StateDone || got.Result.Outcome != simsweep.Equivalent {
		t.Fatalf("miter job: state=%s", got.State)
	}

	var b strings.Builder
	writeMetrics(&b, s.Stats())
	out := b.String()
	for _, want := range []string{
		"cecd_queue_depth 0",
		"cecd_running_jobs 0",
		"cecd_jobs_total{state=\"done\"} 1",
		"cecd_cache_misses_total 1",
		"cecd_latency_seconds{quantile=\"0.5\"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestRingEvictsOldestFinishedJobs(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1, RingSize: 2, CacheSize: 1})
	defer s.Close()

	var last string
	for i := 0; i < 4; i++ {
		a, b := variantPair(i)
		j, err := s.Submit(Request{A: a, B: b})
		if err != nil {
			t.Fatal(err)
		}
		last = j.ID
		waitTerminal(t, s, j.ID, 30*time.Second)
	}
	if got := s.Jobs(); len(got) != 2 {
		t.Fatalf("ring retained %d jobs, want 2", len(got))
	}
	if _, err := s.Get("j1"); err != ErrNotFound {
		t.Fatalf("oldest job still retained: err=%v", err)
	}
	if _, err := s.Get(last); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

func TestLRUCacheEvictionAndSymmetricKeys(t *testing.T) {
	pairs(t)
	c := newLRU(2)
	k1, _ := KeyOf(Request{A: fastA, B: fastB})
	k1s, _ := KeyOf(Request{A: fastB, B: fastA})
	if k1 != k1s {
		t.Fatal("(A,B) and (B,A) keys differ")
	}
	k2, _ := KeyOf(Request{A: slowA, B: slowB})
	k3, _ := KeyOf(Request{Miter: fastA})
	if k1 == k2 || k2 == k3 || k1 == k3 {
		t.Fatal("distinct requests collided")
	}
	// A miter over the same graph must not collide with a pair entry.
	kp, _ := KeyOf(Request{A: fastA, B: fastA})
	if kp == k3 {
		t.Fatal("pair (A,A) collided with miter A")
	}

	res := simsweep.Result{Outcome: simsweep.Equivalent}
	c.put(k1, res)
	c.put(k2, res)
	if _, ok := c.get(k1); !ok { // refresh k1 so k2 is the LRU entry
		t.Fatal("k1 missing")
	}
	c.put(k3, res)
	if _, ok := c.get(k2); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d", c.len())
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 1})
	s.Close()
	if _, err := s.Submit(Request{A: fastA, B: fastB}); err != ErrClosed {
		t.Fatalf("submit after close: err=%v", err)
	}
	s.Close() // idempotent
}

// TestConcurrentIdenticalSubmitsCoalesce is the single-flight contract:
// many goroutines submitting the same fingerprint key while no verdict is
// cached yet must trigger exactly one execution — one leader runs, every
// duplicate either attaches to it (Coalesced) or hits the cache after it
// settles, and all of them report the same verdict as cache hits.
func TestConcurrentIdenticalSubmitsCoalesce(t *testing.T) {
	pairs(t)
	s := New(Config{MaxConcurrent: 2, TotalWorkers: 2, QueueCap: 64})
	defer s.Close()

	const submitters = 16
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := s.Submit(Request{A: fastA, B: fastB})
			if err != nil {
				t.Errorf("submitter %d: %v", i, err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	leaders := 0
	for i, id := range ids {
		j := waitTerminal(t, s, id, 30*time.Second)
		if j.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", id, j.State, j.Err)
		}
		if j.Result == nil || j.Result.Outcome != simsweep.Equivalent {
			t.Fatalf("job %s: wrong verdict %+v", id, j.Result)
		}
		if !j.CacheHit {
			leaders++
		}
		_ = i
	}
	if leaders != 1 {
		t.Fatalf("%d executions for %d identical submissions, want exactly 1", leaders, submitters)
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (single execution)", st.CacheMisses)
	}
	if st.Coalesced+st.CacheHits != submitters-1 {
		t.Fatalf("coalesced(%d)+hits(%d) = %d, want %d duplicates answered without running",
			st.Coalesced, st.CacheHits, st.Coalesced+st.CacheHits, submitters-1)
	}

	// A post-settlement resubmission is a plain cache hit.
	j, err := s.Submit(Request{A: fastB, B: fastA}) // swapped: same key
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit || j.State != StateDone {
		t.Fatalf("resubmission: cacheHit=%v state=%s", j.CacheHit, j.State)
	}
}

// TestFollowerPromotedWhenLeaderCancelled: duplicates of a cancelled leader
// must not inherit the cancellation — the first live follower is promoted
// and the check still runs to a verdict.
func TestFollowerPromotedWhenLeaderCancelled(t *testing.T) {
	pairs(t)
	// One runner kept busy so the leader stays queued long enough to cancel.
	s := New(Config{MaxConcurrent: 1, TotalWorkers: 1, QueueCap: 64})
	defer s.Close()

	blockA, blockB := variantPair(0)
	blocker, err := s.Submit(Request{A: blockA, B: blockB, Engine: simsweep.EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	leader, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, s, leader.ID, 30*time.Second); j.State != StateCancelled {
		t.Fatalf("leader state = %s, want cancelled", j.State)
	}
	j := waitTerminal(t, s, follower.ID, 30*time.Second)
	if j.State != StateDone || j.Result == nil || j.Result.Outcome != simsweep.Equivalent {
		t.Fatalf("promoted follower: state=%s result=%+v", j.State, j.Result)
	}
}

// stubRemote is a scripted RemoteCache: it counts lookups and records
// publishes, optionally delaying Lookup to widen the race window between
// the unlocked federation consult and re-admission.
type stubRemote struct {
	mu        sync.Mutex
	delay     time.Duration
	hit       map[Key]simsweep.Result
	lookups   int
	published []Key
}

func (r *stubRemote) Lookup(key Key) (simsweep.Result, bool) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookups++
	res, ok := r.hit[key]
	return res, ok
}

func (r *stubRemote) Publish(key Key, res simsweep.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.published = append(r.published, key)
}

// TestConcurrentIdenticalSubmitsWithRemoteCache is the federation-path
// half of the single-flight contract: with a RemoteCache configured,
// Submit drops the service lock to consult it, and concurrent identical
// submissions racing through that window must still execute exactly once.
// The verdict must then be published to the federation exactly once.
func TestConcurrentIdenticalSubmitsWithRemoteCache(t *testing.T) {
	pairs(t)
	remote := &stubRemote{delay: 2 * time.Millisecond}
	s := New(Config{MaxConcurrent: 2, TotalWorkers: 2, QueueCap: 64, Remote: remote})

	const submitters = 16
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			j, err := s.Submit(Request{A: fastA, B: fastB})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	close(start)
	wg.Wait()

	executions := 0
	for _, id := range ids {
		j := waitTerminal(t, s, id, 60*time.Second)
		if j.State != StateDone || j.Result == nil || j.Result.Outcome != simsweep.Equivalent {
			t.Fatalf("job %s: state=%s", id, j.State)
		}
		if !j.CacheHit {
			executions++
		}
	}
	if executions != 1 {
		t.Fatalf("%d executions through the federation window, want 1", executions)
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1", st.CacheMisses)
	}
	// Close flushes the async publisher before we inspect the stub.
	s.Close()
	remote.mu.Lock()
	defer remote.mu.Unlock()
	if len(remote.published) != 1 {
		t.Fatalf("published %d times, want 1", len(remote.published))
	}
	key, _ := KeyOf(Request{A: fastA, B: fastB})
	if remote.published[0] != key {
		t.Fatalf("published key %v, want %v", remote.published[0], key)
	}
	if remote.lookups == 0 {
		t.Fatal("remote cache never consulted")
	}
}

// TestRemoteCacheHitSkipsExecution: a verdict already federated elsewhere
// settles the submission as a cache hit without running anything.
func TestRemoteCacheHitSkipsExecution(t *testing.T) {
	pairs(t)
	key, _ := KeyOf(Request{A: fastA, B: fastB})
	remote := &stubRemote{hit: map[Key]simsweep.Result{
		key: {Outcome: simsweep.Equivalent, EngineUsed: "federated"},
	}}
	s := New(Config{MaxConcurrent: 1, Remote: remote})
	defer s.Close()

	j, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone || !j.CacheHit {
		t.Fatalf("remote hit not instant: state=%s cached=%v", j.State, j.CacheHit)
	}
	if j.Result.EngineUsed != "federated" {
		t.Fatalf("result not from the federation: %+v", j.Result)
	}
	st := s.Stats()
	if st.RemoteHits != 1 || st.CacheMisses != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The federated verdict is now in the local LRU: a repeat stays local.
	before := remote.lookups
	if j2, _ := s.Submit(Request{A: fastB, B: fastA}); !j2.CacheHit {
		t.Fatal("repeat missed the local cache")
	}
	if remote.lookups != before {
		t.Fatal("repeat consulted the federation despite a local entry")
	}
}
