package service_test

import (
	"encoding/json"
	"fmt"
	"time"

	"simsweep"
	"simsweep/internal/service"
)

// Example_tracedJob submits a job with Request.Trace set, waits for it to
// finish, and retrieves the recorded Chrome trace_event JSON — the
// programmatic equivalent of POST /v1/jobs?trace=1 followed by
// GET /v1/jobs/{id}/trace.
func Example_tracedJob() {
	a, _ := simsweep.Generate("multiplier", 5)
	b := simsweep.Optimize(a)

	svc := service.New(service.Config{MaxConcurrent: 1})
	defer svc.Close()

	j, _ := svc.Submit(service.Request{A: a, B: b, Seed: 1, Trace: true})
	for !j.State.Terminal() {
		time.Sleep(5 * time.Millisecond)
		j, _ = svc.Get(j.ID)
	}

	buf, _ := svc.Trace(j.ID)
	fmt.Println(j.State, j.Result.Outcome, j.Traced, json.Valid(buf))
	// Output: done equivalent true true
}
