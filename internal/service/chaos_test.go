package service

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"simsweep"
	"simsweep/internal/fault"
)

// TestRunnerCrashRequeuesOnce injects a single runner crash: the service
// must recover the panic, give the job its one retry, and the retry must
// reach the correct verdict as if nothing had happened. The crash is
// visible only in the counters and the metrics export.
func TestRunnerCrashRequeuesOnce(t *testing.T) {
	pairs(t)
	s := New(Config{
		MaxConcurrent:    1,
		Faults:           fault.MustParse("service.runner.crash:at=1", 1),
		CrashBackoffBase: time.Millisecond,
	})
	defer s.Close()

	j, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID, 30*time.Second)
	if j.State != StateDone {
		t.Fatalf("job after crash+retry: state=%s err=%q", j.State, j.Err)
	}
	if j.Retries != 1 {
		t.Fatalf("retries = %d, want 1", j.Retries)
	}
	if j.Result == nil || j.Result.Outcome != simsweep.Equivalent {
		t.Fatalf("retry verdict = %+v, want equivalent", j.Result)
	}

	st := s.Stats()
	if st.RunnerCrashes != 1 || st.Requeues != 1 {
		t.Fatalf("crashes=%d requeues=%d, want 1/1", st.RunnerCrashes, st.Requeues)
	}
	if st.FaultsByHook[fault.HookRunnerCrash] != 1 {
		t.Fatalf("FaultsByHook = %v, want %s=1", st.FaultsByHook, fault.HookRunnerCrash)
	}

	var buf bytes.Buffer
	writeMetrics(&buf, st)
	for _, want := range []string{
		"cecd_runner_crashes_total 1",
		"cecd_requeues_total 1",
		`cecd_faults_total{hook="service.runner.crash"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics export missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunnerCrashTwiceFailsTyped burns the retry too: a job whose second
// attempt also crashes must settle as StateFailed with the typed runner
// error — and the service must go on to run the next job cleanly on the
// same runner.
func TestRunnerCrashTwiceFailsTyped(t *testing.T) {
	pairs(t)
	s := New(Config{
		MaxConcurrent:    1,
		Faults:           fault.MustParse("service.runner.crash:every=1,limit=2", 1),
		CrashBackoffBase: time.Millisecond,
	})
	defer s.Close()

	j, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID, 30*time.Second)
	if j.State != StateFailed {
		t.Fatalf("doubly-crashed job state = %s, want failed", j.State)
	}
	if !strings.Contains(j.Err, "runner crashed") {
		t.Fatalf("failure not typed as a runner crash: %q", j.Err)
	}
	if j.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (no retry storms)", j.Retries)
	}

	// The injector's limit is exhausted; the runner must still be alive and
	// the next job must complete untouched.
	k, err := s.Submit(Request{A: buggyA, B: buggyB})
	if err != nil {
		t.Fatal(err)
	}
	k = waitTerminal(t, s, k.ID, 30*time.Second)
	if k.State != StateDone || k.Result == nil || k.Result.Outcome != simsweep.NotEquivalent {
		t.Fatalf("follow-up job on the crashed runner: state=%s result=%+v", k.State, k.Result)
	}
	if st := s.Stats(); st.RunnerCrashes != 2 || st.Requeues != 1 {
		t.Fatalf("crashes=%d requeues=%d, want 2/1", st.RunnerCrashes, st.Requeues)
	}
}

// TestCancelWhileQueuedNeverRuns is the regression test for the
// queue-cancel race: a job cancelled while it waits behind a slow job must
// never transition to running, never start, and never produce a result —
// even though the runner dequeues it after the cancellation.
func TestCancelWhileQueuedNeverRuns(t *testing.T) {
	pairs(t)
	// A single runner, and an injected per-round stall to hold job A in the
	// simulation engine long enough for the cancel to land while B queues.
	s := New(Config{
		MaxConcurrent: 1,
		Faults:        fault.MustParse("sim.round.stall:at=1,delay=300ms", 1),
	})
	defer s.Close()

	a, err := s.Submit(Request{A: fastA, B: fastB, Engine: simsweep.EngineSim})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, a.ID)

	b, err := s.Submit(Request{A: buggyA, B: buggyB})
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("job B state = %s, want queued behind the stalled job", b.State)
	}
	if _, err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}

	b = waitTerminal(t, s, b.ID, 30*time.Second)
	if b.State != StateCancelled {
		t.Fatalf("cancelled-while-queued job state = %s", b.State)
	}
	if !b.Started.IsZero() || b.Result != nil {
		t.Fatalf("cancelled job ran anyway: started=%v result=%+v", b.Started, b.Result)
	}

	// Job A is unaffected by B's cancellation: it finishes, and an injected
	// stall (no watchdog armed) is invisible in its result.
	a = waitTerminal(t, s, a.ID, 30*time.Second)
	if a.State != StateDone {
		t.Fatalf("stalled job state = %s, want done", a.State)
	}
	if a.Result.Outcome == simsweep.NotEquivalent {
		t.Fatal("stalled sim run reported NOT equivalent on an equivalent pair")
	}
	if a.Result.Degraded {
		t.Fatalf("stall without a phase budget degraded the run: %v", a.Result.Faults)
	}
}

// TestCloseSettlesQueuedJobs covers the other arm of the race: Close closes
// every pending job's stop channel without settling its state, so the
// draining runner must detect the closed channel and settle the job as
// cancelled instead of running it.
func TestCloseSettlesQueuedJobs(t *testing.T) {
	pairs(t)
	s := New(Config{
		MaxConcurrent: 1,
		Faults:        fault.MustParse("sim.round.stall:at=1,delay=300ms", 1),
	})

	a, err := s.Submit(Request{A: fastA, B: fastB, Engine: simsweep.EngineSim})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, a.ID)
	b, err := s.Submit(Request{A: buggyA, B: buggyB})
	if err != nil {
		t.Fatal(err)
	}

	s.Close() // blocks until the runner drained the queue

	bj, err := s.Get(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bj.State != StateCancelled {
		t.Fatalf("queued job after Close: state = %s, want cancelled", bj.State)
	}
	if !bj.Started.IsZero() || bj.Result != nil {
		t.Fatalf("queued job ran during shutdown: started=%v result=%+v", bj.Started, bj.Result)
	}
	aj, err := s.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !aj.State.Terminal() {
		t.Fatalf("running job not settled by Close: state = %s", aj.State)
	}
}

// TestDegradedResultsNotCached submits the same pair twice under an
// injector that degrades the first run: the second submission must be a
// cache miss (degraded results are never cached) and, with the injector
// exhausted, must complete healthy.
func TestDegradedResultsNotCached(t *testing.T) {
	pairs(t)
	s := New(Config{
		MaxConcurrent: 1,
		Faults:        fault.MustParse("par.worker.panic:at=1", 1),
	})
	defer s.Close()

	j, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID, 30*time.Second)
	if j.State != StateDone || j.Result == nil {
		t.Fatalf("faulted job: state=%s err=%q", j.State, j.Err)
	}
	if !j.Result.Degraded {
		t.Skip("injected panic did not reach this run (strash-proved); nothing to assert")
	}
	if j.Result.Outcome == simsweep.NotEquivalent {
		t.Fatal("degraded run reported NOT equivalent on an equivalent pair")
	}

	k, err := s.Submit(Request{A: fastA, B: fastB})
	if err != nil {
		t.Fatal(err)
	}
	k = waitTerminal(t, s, k.ID, 30*time.Second)
	if k.CacheHit {
		t.Fatal("degraded result was served from the cache")
	}
	if k.State != StateDone || k.Result == nil || k.Result.Outcome != simsweep.Equivalent || k.Result.Degraded {
		t.Fatalf("healthy rerun: state=%s result=%+v", k.State, k.Result)
	}
	if st := s.Stats(); st.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", st.Degraded)
	}
}

// waitRunning polls until the job reports StateRunning (fails the test if
// it settles first).
func waitRunning(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StateRunning {
			return
		}
		if j.State.Terminal() {
			t.Fatalf("job %s settled as %s before it was seen running", id, j.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
