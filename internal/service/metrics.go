package service

import (
	"fmt"
	"io"
	"sort"
)

// writeMetrics renders the counters in the Prometheus text exposition
// format (plain counters and gauges; no client library needed).
func writeMetrics(w io.Writer, st Stats) {
	fmt.Fprintf(w, "# HELP cecd_queue_depth Jobs waiting for a runner slot.\n")
	fmt.Fprintf(w, "# TYPE cecd_queue_depth gauge\n")
	fmt.Fprintf(w, "cecd_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP cecd_running_jobs Jobs currently executing (at most cecd_max_concurrent).\n")
	fmt.Fprintf(w, "# TYPE cecd_running_jobs gauge\n")
	fmt.Fprintf(w, "cecd_running_jobs %d\n", st.Running)
	fmt.Fprintf(w, "# TYPE cecd_max_concurrent gauge\n")
	fmt.Fprintf(w, "cecd_max_concurrent %d\n", st.Concurrent)
	fmt.Fprintf(w, "# TYPE cecd_workers gauge\n")
	fmt.Fprintf(w, "cecd_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# TYPE cecd_cache_hits_total counter\n")
	fmt.Fprintf(w, "cecd_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "# TYPE cecd_cache_misses_total counter\n")
	fmt.Fprintf(w, "cecd_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(w, "# TYPE cecd_cache_entries gauge\n")
	fmt.Fprintf(w, "cecd_cache_entries %d\n", st.CacheSize)

	fmt.Fprintf(w, "# HELP cecd_jobs_total Finished jobs by terminal state.\n")
	fmt.Fprintf(w, "# TYPE cecd_jobs_total counter\n")
	states := make([]string, 0, len(st.ByOutcome))
	for s := range st.ByOutcome {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "cecd_jobs_total{state=%q} %d\n", s, st.ByOutcome[State(s)])
	}

	fmt.Fprintf(w, "# HELP cecd_latency_seconds End-to-end latency of completed (uncached) jobs.\n")
	fmt.Fprintf(w, "# TYPE cecd_latency_seconds summary\n")
	fmt.Fprintf(w, "cecd_latency_seconds{quantile=\"0.5\"} %g\n", st.P50.Seconds())
	fmt.Fprintf(w, "cecd_latency_seconds{quantile=\"0.99\"} %g\n", st.P99.Seconds())
}
