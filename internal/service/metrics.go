package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Histogram bucket bounds (upper bounds, seconds or items).
var (
	phaseBuckets  = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}
	launchBuckets = []float64{64, 256, 1024, 4096, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	queueBuckets  = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30}
)

// histogram is a minimal self-synchronising Prometheus histogram:
// cumulative bucket counts over fixed upper bounds plus sum and count.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, non-cumulative per bucket
	sum    float64
	total  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// write renders the histogram in the Prometheus text format. labels is the
// literal label set inside the braces ("" for none, `kind="P"` etc.).
func (h *histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total)
	}
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// writeHistograms renders the service's duration and size histograms.
func (s *Service) writeHistograms(w io.Writer) {
	fmt.Fprintf(w, "# HELP cecd_phase_duration_seconds Duration of executed engine phases by kind (P/G/L).\n")
	fmt.Fprintf(w, "# TYPE cecd_phase_duration_seconds histogram\n")
	kinds := make([]string, 0, len(s.phaseHists))
	for k := range s.phaseHists {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s.phaseHists[k].write(w, "cecd_phase_duration_seconds", fmt.Sprintf("kind=%q", k))
	}
	fmt.Fprintf(w, "# HELP cecd_kernel_launch_items Index-space size of parallel kernel launches.\n")
	fmt.Fprintf(w, "# TYPE cecd_kernel_launch_items histogram\n")
	s.launchHist.write(w, "cecd_kernel_launch_items", "")
	fmt.Fprintf(w, "# HELP cecd_queue_wait_seconds Time jobs spent queued before a runner picked them up.\n")
	fmt.Fprintf(w, "# TYPE cecd_queue_wait_seconds histogram\n")
	s.queueHist.write(w, "cecd_queue_wait_seconds", "")
}

// writeMetrics renders the counters in the Prometheus text exposition
// format (plain counters and gauges; no client library needed).
func writeMetrics(w io.Writer, st Stats) {
	fmt.Fprintf(w, "# HELP cecd_queue_depth Jobs waiting for a runner slot.\n")
	fmt.Fprintf(w, "# TYPE cecd_queue_depth gauge\n")
	fmt.Fprintf(w, "cecd_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP cecd_running_jobs Jobs currently executing (at most cecd_max_concurrent).\n")
	fmt.Fprintf(w, "# TYPE cecd_running_jobs gauge\n")
	fmt.Fprintf(w, "cecd_running_jobs %d\n", st.Running)
	fmt.Fprintf(w, "# TYPE cecd_max_concurrent gauge\n")
	fmt.Fprintf(w, "cecd_max_concurrent %d\n", st.Concurrent)
	fmt.Fprintf(w, "# TYPE cecd_workers gauge\n")
	fmt.Fprintf(w, "cecd_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# TYPE cecd_cache_hits_total counter\n")
	fmt.Fprintf(w, "cecd_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "# TYPE cecd_cache_misses_total counter\n")
	fmt.Fprintf(w, "cecd_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(w, "# TYPE cecd_cache_entries gauge\n")
	fmt.Fprintf(w, "cecd_cache_entries %d\n", st.CacheSize)
	fmt.Fprintf(w, "# TYPE cecd_queue_cap gauge\n")
	fmt.Fprintf(w, "cecd_queue_cap %d\n", st.QueueCap)
	fmt.Fprintf(w, "# HELP cecd_remote_cache_hits_total Submissions answered by the federated result cache.\n")
	fmt.Fprintf(w, "# TYPE cecd_remote_cache_hits_total counter\n")
	fmt.Fprintf(w, "cecd_remote_cache_hits_total %d\n", st.RemoteHits)
	fmt.Fprintf(w, "# HELP cecd_coalesced_total Submissions coalesced onto an identical in-flight job (single-flight).\n")
	fmt.Fprintf(w, "# TYPE cecd_coalesced_total counter\n")
	fmt.Fprintf(w, "cecd_coalesced_total %d\n", st.Coalesced)

	fmt.Fprintf(w, "# HELP cecd_jobs_total Finished jobs by terminal state.\n")
	fmt.Fprintf(w, "# TYPE cecd_jobs_total counter\n")
	states := make([]string, 0, len(st.ByOutcome))
	for s := range st.ByOutcome {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "cecd_jobs_total{state=%q} %d\n", s, st.ByOutcome[State(s)])
	}

	fmt.Fprintf(w, "# HELP cecd_latency_seconds End-to-end latency of completed (uncached) jobs.\n")
	fmt.Fprintf(w, "# TYPE cecd_latency_seconds summary\n")
	fmt.Fprintf(w, "cecd_latency_seconds{quantile=\"0.5\"} %g\n", st.P50.Seconds())
	fmt.Fprintf(w, "cecd_latency_seconds{quantile=\"0.99\"} %g\n", st.P99.Seconds())

	fmt.Fprintf(w, "# HELP cecd_runner_crashes_total Recovered runner panics (injected or real).\n")
	fmt.Fprintf(w, "# TYPE cecd_runner_crashes_total counter\n")
	fmt.Fprintf(w, "cecd_runner_crashes_total %d\n", st.RunnerCrashes)
	fmt.Fprintf(w, "# HELP cecd_requeues_total Jobs given a second attempt after a runner crash.\n")
	fmt.Fprintf(w, "# TYPE cecd_requeues_total counter\n")
	fmt.Fprintf(w, "cecd_requeues_total %d\n", st.Requeues)
	fmt.Fprintf(w, "# HELP cecd_degraded_total Jobs whose result survived internal faults (Result.Degraded).\n")
	fmt.Fprintf(w, "# TYPE cecd_degraded_total counter\n")
	fmt.Fprintf(w, "cecd_degraded_total %d\n", st.Degraded)
	if st.SchedClasses != nil {
		fmt.Fprintf(w, "# HELP cecd_sched_classes_total Candidate classes the sched engine routed, by prover.\n")
		fmt.Fprintf(w, "# TYPE cecd_sched_classes_total counter\n")
		engines := make([]string, 0, len(st.SchedClasses))
		for e := range st.SchedClasses {
			engines = append(engines, e)
		}
		sort.Strings(engines)
		for _, e := range engines {
			fmt.Fprintf(w, "cecd_sched_classes_total{engine=%q} %d\n", e, st.SchedClasses[e])
		}
	}
	fmt.Fprintf(w, "# HELP cecd_cube_cubes_total Cubes solved by the cube-and-conquer engine.\n")
	fmt.Fprintf(w, "# TYPE cecd_cube_cubes_total counter\n")
	fmt.Fprintf(w, "cecd_cube_cubes_total %d\n", st.CubeCubes)
	fmt.Fprintf(w, "# HELP cecd_cube_splits_total Timed-out cubes the cube engine re-split.\n")
	fmt.Fprintf(w, "# TYPE cecd_cube_splits_total counter\n")
	fmt.Fprintf(w, "cecd_cube_splits_total %d\n", st.CubeSplits)
	if st.FaultsByHook != nil {
		fmt.Fprintf(w, "# HELP cecd_faults_total Fires of each armed fault-injection hook.\n")
		fmt.Fprintf(w, "# TYPE cecd_faults_total counter\n")
		hooks := make([]string, 0, len(st.FaultsByHook))
		for h := range st.FaultsByHook {
			hooks = append(hooks, h)
		}
		sort.Strings(hooks)
		for _, h := range hooks {
			fmt.Fprintf(w, "cecd_faults_total{hook=%q} %d\n", h, st.FaultsByHook[h])
		}
	}
}
