// Package service turns the CEC engines into a long-running job subsystem:
// a bounded submission queue, a scheduler that runs K jobs concurrently —
// each on its own par.Device sized so the total worker count stays within
// GOMAXPROCS (admission control instead of oversubscription) — per-job
// deadlines and client cancellation wired into the engines' cooperative
// Stop channel, an LRU result cache keyed by a canonical structural
// fingerprint of the (A, B) pair, and a ring of recent results with
// per-job statistics. cmd/cecd exposes it over HTTP.
package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"simsweep"
	"simsweep/internal/aig"
	"simsweep/internal/fault"
	"simsweep/internal/par"
	"simsweep/internal/trace"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | timeout | cancelled.
// Cache hits jump straight to done.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateTimeout   State = "timeout"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateTimeout || s == StateCancelled
}

// Request describes one CEC job: either a pair (A, B) of circuits with
// matching interfaces, or a prebuilt miter.
type Request struct {
	A, B  *aig.AIG // pair mode (Miter nil)
	Miter *aig.AIG // miter mode (A, B nil)

	Engine        simsweep.Engine // "" selects the hybrid flow
	Seed          int64
	ConflictLimit int64
	// Timeout bounds the job's execution (not its queue wait); 0 selects
	// the service default. It is capped at Config.MaxTimeout.
	Timeout time.Duration
	// Trace records the job's execution (engine phases, kernel spans,
	// SAT calls) into a per-job tracer; the rendered Chrome trace_event
	// JSON is retrievable with Service.Trace once the job is terminal.
	// A cache hit runs nothing and therefore records nothing.
	Trace bool
}

// Config sizes the service. The zero value selects sensible defaults.
type Config struct {
	// MaxConcurrent is K, the number of jobs running at once (default 2).
	MaxConcurrent int
	// TotalWorkers is the worker budget shared by the K per-job devices;
	// each device gets TotalWorkers/K (min 1). Default GOMAXPROCS, so the
	// service never oversubscribes the machine.
	TotalWorkers int
	// QueueCap bounds the submission queue; Submit fails with
	// ErrQueueFull beyond it (default 64).
	QueueCap int
	// CacheSize bounds the LRU result cache entries (default 256).
	CacheSize int
	// RingSize bounds the ring of retained finished jobs (default 256).
	RingSize int
	// DefaultTimeout applies to requests without one (0: unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps any per-request timeout (0: uncapped).
	MaxTimeout time.Duration
	// Log, when non-nil, receives one line per job transition.
	Log io.Writer
	// Faults, when armed, injects deterministic faults into the service and
	// into every job it runs: the service.runner.crash hook crashes a runner
	// as it picks up a job (the runner recovers, re-queues the job once with
	// backoff, then fails it with a typed error), and the injector is passed
	// down into the engines so the kernel/simulation/SAT hooks fire too.
	// Nil (the default) disables every hook at zero cost.
	Faults *fault.Injector
	// PhaseBudget bounds each simulation-engine phase of every job by wall
	// clock (see simsweep.Options.PhaseBudget). Zero disables the watchdog.
	PhaseBudget time.Duration
	// CrashBackoffBase is the first delay of a crashed runner's capped
	// exponential backoff (default 50ms); CrashBackoffMax caps it
	// (default 2s). A runner that completes a job cleanly resets to base.
	CrashBackoffBase time.Duration
	// CrashBackoffMax caps the crashed-runner backoff (default 2s).
	CrashBackoffMax time.Duration
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.CrashBackoffBase <= 0 {
		c.CrashBackoffBase = 50 * time.Millisecond
	}
	if c.CrashBackoffMax <= 0 {
		c.CrashBackoffMax = 2 * time.Second
	}
}

// Service errors.
var (
	ErrQueueFull  = errors.New("service: submission queue full")
	ErrClosed     = errors.New("service: closed")
	ErrNotFound   = errors.New("service: no such job")
	ErrFinished   = errors.New("service: job already finished")
	ErrBadRequest = errors.New("service: request needs either A and B or Miter")
)

// Job is the lifecycle record of one submitted check. Service.Get,
// Submit, Cancel and Jobs return value copies that are safe to read
// without locking.
type Job struct {
	ID      string
	State   State
	Engine  simsweep.Engine
	Timeout time.Duration

	Created  time.Time
	Started  time.Time
	Finished time.Time

	// Result holds the engine result once Terminal (nil for failed).
	Result *simsweep.Result
	// Err carries the failure message for StateFailed.
	Err string
	// CacheHit marks a job answered from the result cache.
	CacheHit bool
	// KernelLaunches counts the par-device kernel launches the job issued.
	KernelLaunches int
	// Traced marks a job that recorded an execution trace; fetch it with
	// Service.Trace once the job is terminal.
	Traced bool
	// Retries counts how many times the job was re-queued after a runner
	// crash (at most 1: a job whose second attempt also crashes fails).
	Retries int
}

// job pairs the published record with the scheduling machinery that must
// never be copied.
type job struct {
	Job

	key   cacheKey
	req   Request
	stop  chan struct{}
	once  sync.Once
	cause State // timeout or cancelled, set by whoever closed stop

	// traceJSON is the rendered Chrome trace of a traced job, set under
	// s.mu when the job reaches a terminal state.
	traceJSON []byte
}

// stopNow closes the job's stop channel once, recording why.
func (j *job) stopNow(cause State) {
	j.once.Do(func() {
		j.cause = cause
		close(j.stop)
	})
}

// Service is the CEC job subsystem. Create with New, release with Close.
type Service struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	ring    []string // finished job ids, oldest first
	cache   *lru
	seq     int
	closed  bool
	running int

	// counters for /metrics
	hits, misses  uint64
	byOutcome     map[State]uint64
	latencies     *latencyRing
	runnerCrashes uint64 // recovered runner panics (injected or real)
	requeues      uint64 // jobs re-queued after a runner crash
	degraded      uint64 // jobs whose result reported Degraded

	// histograms for /metrics; each synchronises itself (the kernel
	// launch observer fires concurrently from every runner).
	phaseHists map[string]*histogram // phase duration by kind (P/G/L)
	launchHist *histogram            // kernel launch sizes (items)
	queueHist  *histogram            // queue wait (submit → start)

	queue chan *job
	wg    sync.WaitGroup
	devs  []*par.Device
}

// New starts a service: K runner goroutines, each owning one device.
func New(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		cache:     newLRU(cfg.CacheSize),
		byOutcome: make(map[State]uint64),
		latencies: newLatencyRing(1024),
		phaseHists: map[string]*histogram{
			"P": newHistogram(phaseBuckets...),
			"G": newHistogram(phaseBuckets...),
			"L": newHistogram(phaseBuckets...),
		},
		launchHist: newHistogram(launchBuckets...),
		queueHist:  newHistogram(queueBuckets...),
		queue:      make(chan *job, cfg.QueueCap),
	}
	perDev := cfg.TotalWorkers / cfg.MaxConcurrent
	if perDev < 1 {
		perDev = 1
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		dev := par.NewDevice(perDev)
		// Every kernel launch of every job feeds the launch-size
		// histogram, whether or not the job is traced.
		dev.SetObserver(func(name string, items int, d time.Duration) {
			s.launchHist.observe(float64(items))
		})
		s.devs = append(s.devs, dev)
		s.wg.Add(1)
		go s.runner(dev)
	}
	return s
}

// Close drains the runners and releases their devices. Queued jobs that
// never ran are marked cancelled; running jobs are stopped cooperatively.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			j.stopNow(StateCancelled)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, dev := range s.devs {
		dev.Close()
	}
}

// Submit validates and enqueues a request. Cache hits complete instantly
// (the returned job is already done); otherwise the job is queued and one
// of the K runners will pick it up. A full queue fails with ErrQueueFull —
// that is the admission control the HTTP layer maps to 429.
func (s *Service) Submit(req Request) (Job, error) {
	key, err := keyOf(req)
	if err != nil {
		return Job{}, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, ErrClosed
	}
	s.seq++
	j := &job{
		Job: Job{
			ID:      fmt.Sprintf("j%d", s.seq),
			State:   StateQueued,
			Engine:  req.Engine,
			Timeout: timeout,
			Created: time.Now(),
		},
		key:  key,
		req:  req,
		stop: make(chan struct{}),
	}
	s.jobs[j.ID] = j

	if cached, ok := s.cache.get(key); ok {
		s.hits++
		j.State = StateDone
		j.CacheHit = true
		j.Started = j.Created
		j.Finished = time.Now()
		res := cached
		j.Result = &res
		s.finishLocked(j)
		snap := j.Job
		s.mu.Unlock()
		s.logf("job %s: cache hit (%v)", snap.ID, res.Outcome)
		return snap, nil
	}
	s.misses++

	// Snapshot before unlocking: once queued, a runner may start mutating
	// the job the instant the lock is released.
	snap := j.Job
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	s.mu.Unlock()
	s.logf("job %s: queued (engine %s)", snap.ID, engineName(req.Engine))
	return snap, nil
}

// Get returns a snapshot of the job.
func (s *Service) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.Job, nil
}

// Trace returns the Chrome trace_event JSON recorded for a traced job.
// It fails with ErrNotFound for unknown jobs and jobs that recorded no
// trace (not requested, cache hit, or still running — the trace is
// rendered when the job reaches a terminal state).
func (s *Service) Trace(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.traceJSON == nil {
		return nil, ErrNotFound
	}
	return append([]byte(nil), j.traceJSON...), nil
}

// Cancel requests cooperative cancellation of a queued or running job.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrNotFound
	}
	if j.State.Terminal() {
		snap := j.Job
		s.mu.Unlock()
		return snap, ErrFinished
	}
	queued := j.State == StateQueued
	if queued {
		// The runner will skip it; settle the record immediately.
		j.State = StateCancelled
		j.Finished = time.Now()
		s.finishLocked(j)
	}
	s.mu.Unlock()
	j.stopNow(StateCancelled)
	s.logf("job %s: cancel requested", id)
	s.mu.Lock()
	snap := j.Job
	s.mu.Unlock()
	return snap, nil
}

// Jobs returns snapshots of every retained job, newest first.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.Job)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	return out
}

// runner is one of the K scheduler loops; it owns dev for its lifetime, so
// at most K devices are ever simulating and total workers stay bounded. A
// runner that crashes mid-job (an injected service.runner.crash fault, or a
// genuine bug escaping the engines) recovers, disposes of the job — re-queue
// once, then fail — and restarts after a capped exponential backoff, so a
// crashing workload degrades the service's throughput, never its liveness.
func (s *Service) runner(dev *par.Device) {
	defer s.wg.Done()
	backoff := s.cfg.CrashBackoffBase
	for j := range s.queue {
		if s.runGuarded(j, dev) {
			backoff = s.cfg.CrashBackoffBase // a clean job resets the ramp
			continue
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > s.cfg.CrashBackoffMax {
			backoff = s.cfg.CrashBackoffMax
		}
	}
}

// runGuarded runs one job, converting a panicking runner into a recovered
// crash. It reports whether the job completed without a crash.
func (s *Service) runGuarded(j *job, dev *par.Device) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.crashed(j, r)
			ok = false
		}
	}()
	// Model the runner itself dying as it picks up the job (a heap blow-up,
	// a bug outside the engines' own recovery nets). The panic unwinds to
	// the recover above.
	s.cfg.Faults.Panic(fault.HookRunnerCrash)
	s.runJob(j, dev)
	return true
}

// crashed settles a job whose runner panicked: re-queue it once, fail it
// with a typed error when it already burned its retry (or the queue is
// full, closed, or the job was cancelled meanwhile).
func (s *Service) crashed(j *job, cause interface{}) {
	s.mu.Lock()
	s.runnerCrashes++
	if j.State == StateRunning {
		s.running--
	}
	if j.State.Terminal() {
		// The panic struck after the job settled; nothing to repair.
		s.mu.Unlock()
		s.logf("runner: recovered crash after job %s settled: %v", j.ID, cause)
		return
	}
	if j.Retries == 0 && !s.closed && !stopClosed(j.stop) {
		j.Retries++
		j.State = StateQueued
		select {
		case s.queue <- j:
			s.requeues++
			s.mu.Unlock()
			s.logf("job %s: runner crashed (%v); re-queued (retry 1)", j.ID, cause)
			return
		default: // queue full: fall through to failure
		}
	}
	j.State = StateFailed
	j.Err = fmt.Sprintf("runner crashed: %v", cause)
	j.Finished = time.Now()
	s.finishLocked(j)
	s.mu.Unlock()
	s.logf("job %s: failed (%s)", j.ID, j.Err)
}

// stopClosed reports whether a job's stop channel has been closed.
func stopClosed(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

func (s *Service) runJob(j *job, dev *par.Device) {
	s.mu.Lock()
	if j.State != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	if stopClosed(j.stop) {
		// The job's stop channel closed while it sat in the queue (service
		// shutdown, or a cancel that raced the state update): settle it
		// without ever running — a withdrawn job must never report
		// "running", and must never produce (and cache) a verdict.
		j.State = j.cause
		if j.State == "" {
			j.State = StateCancelled
		}
		j.Finished = time.Now()
		s.finishLocked(j)
		s.mu.Unlock()
		s.logf("job %s: %s (while queued)", j.ID, j.State)
		return
	}
	j.State = StateRunning
	j.Started = time.Now()
	s.running++
	s.mu.Unlock()
	s.queueHist.observe(j.Started.Sub(j.Created).Seconds())
	s.logf("job %s: running", j.ID)

	var tracer *trace.Tracer
	if j.req.Trace {
		tracer = trace.New(0)
		tracer.Enable()
	}
	var timer *time.Timer
	if j.Timeout > 0 {
		timer = time.AfterFunc(j.Timeout, func() { j.stopNow(StateTimeout) })
	}
	launchesBefore := totalLaunches(dev)
	res, err := s.check(j.req, dev, j.stop, tracer)
	if timer != nil {
		timer.Stop()
	}
	var traceJSON []byte
	if tracer != nil {
		tracer.Disable()
		var buf bytes.Buffer
		if werr := trace.WriteChromeTrace(&buf, tracer); werr == nil {
			traceJSON = buf.Bytes()
		}
	}
	for _, p := range res.SimPhases {
		if h := s.phaseHists[p.Kind.String()]; h != nil {
			h.observe(p.Duration.Seconds())
		}
	}

	s.mu.Lock()
	j.Finished = time.Now()
	j.KernelLaunches = totalLaunches(dev) - launchesBefore
	j.traceJSON = traceJSON
	j.Traced = traceJSON != nil
	s.running--
	switch {
	case err != nil:
		j.State = StateFailed
		j.Err = err.Error()
	case res.Stopped:
		// The engines returned early because the stop channel closed;
		// the closer recorded whether it was the deadline or the client.
		j.State = j.cause
		if j.State == "" { // stop raced a genuine finish; treat as done
			j.State = StateDone
		}
		j.Result = &res
	default:
		j.State = StateDone
		j.Result = &res
		// A degraded verdict is still trustworthy (faulted work withdraws
		// its claims rather than guess) but is not cached: a later identical
		// submission deserves a healthy run, and chaos soaks must keep
		// exercising the engines rather than the cache.
		if res.Outcome != simsweep.Undecided && !res.Degraded {
			s.cache.put(j.key, res)
		}
	}
	if res.Degraded {
		s.degraded++
	}
	s.finishLocked(j)
	s.mu.Unlock()
	s.logf("job %s: %s", j.ID, j.State)
}

// check dispatches the engines with the runner's device and the job's stop
// channel wired into the cooperative cancellation path.
func (s *Service) check(req Request, dev *par.Device, stop <-chan struct{}, tracer *trace.Tracer) (simsweep.Result, error) {
	opts := simsweep.Options{
		Engine:        req.Engine,
		Seed:          req.Seed,
		ConflictLimit: req.ConflictLimit,
		Dev:           dev,
		Workers:       dev.Workers(),
		Stop:          stop,
		Trace:         tracer,
		Faults:        s.cfg.Faults,
		PhaseBudget:   s.cfg.PhaseBudget,
	}
	if req.Miter != nil {
		return simsweep.CheckMiter(req.Miter, opts)
	}
	return simsweep.CheckEquivalence(req.A, req.B, opts)
}

// finishLocked records a terminal job in the ring and counters, evicting
// the oldest retained record beyond RingSize. Callers hold s.mu.
func (s *Service) finishLocked(j *job) {
	s.byOutcome[j.State]++
	if j.State == StateDone && !j.CacheHit {
		s.latencies.add(j.Finished.Sub(j.Created))
	}
	s.ring = append(s.ring, j.ID)
	if len(s.ring) > s.cfg.RingSize {
		evict := s.ring[0]
		s.ring = s.ring[1:]
		if old, ok := s.jobs[evict]; ok && old.State.Terminal() {
			delete(s.jobs, evict)
		}
	}
}

// Stats is a point-in-time snapshot of the service counters for /metrics.
type Stats struct {
	QueueDepth  int
	Running     int
	CacheHits   uint64
	CacheMisses uint64
	CacheSize   int
	ByOutcome   map[State]uint64
	P50         time.Duration
	P99         time.Duration
	Workers     int // total worker budget across the K devices
	Concurrent  int // K
	// RunnerCrashes counts recovered runner panics; Requeues the jobs given
	// a second attempt after one; Degraded the jobs whose result survived
	// internal faults.
	RunnerCrashes uint64
	Requeues      uint64
	Degraded      uint64
	// FaultsByHook is the armed injector's fire count per hook (nil when
	// the service runs without fault injection).
	FaultsByHook map[string]uint64
}

// Stats returns the current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[State]uint64, len(s.byOutcome))
	for k, v := range s.byOutcome {
		by[k] = v
	}
	p50, p99 := s.latencies.percentiles()
	return Stats{
		QueueDepth:    len(s.queue),
		Running:       s.running,
		CacheHits:     s.hits,
		CacheMisses:   s.misses,
		CacheSize:     s.cache.len(),
		ByOutcome:     by,
		P50:           p50,
		P99:           p99,
		Workers:       s.cfg.TotalWorkers,
		Concurrent:    s.cfg.MaxConcurrent,
		RunnerCrashes: s.runnerCrashes,
		Requeues:      s.requeues,
		Degraded:      s.degraded,
		FaultsByHook:  s.cfg.Faults.Counts(),
	}
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

func engineName(e simsweep.Engine) string {
	if e == "" {
		return string(simsweep.EngineHybrid)
	}
	return string(e)
}

// totalLaunches sums the kernel launch counts of a device's profile.
func totalLaunches(dev *par.Device) int {
	n := 0
	for _, ks := range dev.Stats() {
		n += ks.Launches
	}
	return n
}

// latencyRing keeps the last n end-to-end latencies of completed jobs for
// cheap p50/p99 estimation.
type latencyRing struct {
	buf  []time.Duration
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]time.Duration, n)} }

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *latencyRing) percentiles() (p50, p99 time.Duration) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if n == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), r.buf[:n]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(p float64) int {
		i := int(p * float64(n-1))
		return i
	}
	return sorted[idx(0.50)], sorted[idx(0.99)]
}
