// Package service turns the CEC engines into a long-running job subsystem:
// a bounded submission queue, a scheduler that runs K jobs concurrently —
// each on its own par.Device sized so the total worker count stays within
// GOMAXPROCS (admission control instead of oversubscription) — per-job
// deadlines and client cancellation wired into the engines' cooperative
// Stop channel, an LRU result cache keyed by a canonical structural
// fingerprint of the (A, B) pair, and a ring of recent results with
// per-job statistics. cmd/cecd exposes it over HTTP.
package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"simsweep"
	"simsweep/internal/aig"
	"simsweep/internal/fault"
	"simsweep/internal/par"
	"simsweep/internal/trace"
)

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | timeout | cancelled.
// Cache hits jump straight to done.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateTimeout   State = "timeout"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateTimeout || s == StateCancelled
}

// Request describes one CEC job: either a pair (A, B) of circuits with
// matching interfaces, or a prebuilt miter.
type Request struct {
	A, B  *aig.AIG // pair mode (Miter nil)
	Miter *aig.AIG // miter mode (A, B nil)

	Engine        simsweep.Engine // "" selects the hybrid flow
	Seed          int64
	ConflictLimit int64
	// Timeout bounds the job's execution (not its queue wait); 0 selects
	// the service default. It is capped at Config.MaxTimeout.
	Timeout time.Duration
	// Trace records the job's execution (engine phases, kernel spans,
	// SAT calls) into a per-job tracer; the rendered Chrome trace_event
	// JSON is retrievable with Service.Trace once the job is terminal.
	// A cache hit runs nothing and therefore records nothing.
	Trace bool
}

// Config sizes the service. The zero value selects sensible defaults.
type Config struct {
	// MaxConcurrent is K, the number of jobs running at once (default 2).
	MaxConcurrent int
	// TotalWorkers is the worker budget shared by the K per-job devices;
	// each device gets TotalWorkers/K (min 1). Default GOMAXPROCS, so the
	// service never oversubscribes the machine.
	TotalWorkers int
	// QueueCap bounds the submission queue; Submit fails with
	// ErrQueueFull beyond it (default 64).
	QueueCap int
	// CacheSize bounds the LRU result cache entries (default 256).
	CacheSize int
	// RingSize bounds the ring of retained finished jobs (default 256).
	RingSize int
	// DefaultTimeout applies to requests without one (0: unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps any per-request timeout (0: uncapped).
	MaxTimeout time.Duration
	// Log, when non-nil, receives one line per job transition.
	Log io.Writer
	// Faults, when armed, injects deterministic faults into the service and
	// into every job it runs: the service.runner.crash hook crashes a runner
	// as it picks up a job (the runner recovers, re-queues the job once with
	// backoff, then fails it with a typed error), and the injector is passed
	// down into the engines so the kernel/simulation/SAT hooks fire too.
	// Nil (the default) disables every hook at zero cost.
	Faults *fault.Injector
	// PhaseBudget bounds each simulation-engine phase of every job by wall
	// clock (see simsweep.Options.PhaseBudget). Zero disables the watchdog.
	PhaseBudget time.Duration
	// CrashBackoffBase is the first delay of a crashed runner's capped
	// exponential backoff (default 50ms); CrashBackoffMax caps it
	// (default 2s). A runner that completes a job cleanly resets to base.
	CrashBackoffBase time.Duration
	// CrashBackoffMax caps the crashed-runner backoff (default 2s).
	CrashBackoffMax time.Duration
	// Remote, when non-nil, federates the result cache across nodes: a
	// submission that misses the local LRU consults it before running, and
	// decided, non-degraded results are published back (asynchronously, so
	// runner latency never waits on the network). Degraded results are
	// never published: a verdict that survived faults is trustworthy
	// locally but must not propagate through the federation.
	Remote RemoteCache
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.CrashBackoffBase <= 0 {
		c.CrashBackoffBase = 50 * time.Millisecond
	}
	if c.CrashBackoffMax <= 0 {
		c.CrashBackoffMax = 2 * time.Second
	}
}

// Service errors.
var (
	ErrQueueFull  = errors.New("service: submission queue full")
	ErrClosed     = errors.New("service: closed")
	ErrNotFound   = errors.New("service: no such job")
	ErrFinished   = errors.New("service: job already finished")
	ErrBadRequest = errors.New("service: request needs either A and B or Miter")
)

// Job is the lifecycle record of one submitted check. Service.Get,
// Submit, Cancel and Jobs return value copies that are safe to read
// without locking.
type Job struct {
	ID      string
	State   State
	Engine  simsweep.Engine
	Timeout time.Duration

	Created  time.Time
	Started  time.Time
	Finished time.Time

	// Result holds the engine result once Terminal (nil for failed).
	Result *simsweep.Result
	// Err carries the failure message for StateFailed.
	Err string
	// CacheHit marks a job answered from the result cache.
	CacheHit bool
	// KernelLaunches counts the par-device kernel launches the job issued.
	KernelLaunches int
	// Traced marks a job that recorded an execution trace; fetch it with
	// Service.Trace once the job is terminal.
	Traced bool
	// Retries counts how many times the job was re-queued after a runner
	// crash (at most 1: a job whose second attempt also crashes fails).
	Retries int
	// Coalesced marks a job that attached to an identical in-flight
	// submission instead of executing: the key matched a running leader,
	// and the leader's decided verdict settled this job too (reported as a
	// cache hit). Single-flight coalescing guarantees one execution per
	// distinct fingerprint key no matter how many concurrent submitters
	// race.
	Coalesced bool
}

// job pairs the published record with the scheduling machinery that must
// never be copied.
type job struct {
	Job

	key   Key
	req   Request
	stop  chan struct{}
	once  sync.Once
	cause State // timeout or cancelled, set by whoever closed stop

	// followers are jobs with the same key that attached to this leader
	// while it was in flight; they settle from its result. Guarded by s.mu.
	followers []*job

	// traceJSON is the rendered Chrome trace of a traced job, set under
	// s.mu when the job reaches a terminal state.
	traceJSON []byte
}

// stopNow closes the job's stop channel once, recording why.
func (j *job) stopNow(cause State) {
	j.once.Do(func() {
		j.cause = cause
		close(j.stop)
	})
}

// Service is the CEC job subsystem. Create with New, release with Close.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	ring     []string // finished job ids, oldest first
	cache    *lru
	inflight map[Key]*job // key -> leader job currently queued or running
	seq      int
	closed   bool
	running  int

	// counters for /metrics
	hits, misses  uint64
	remoteHits    uint64 // submissions answered by the federated cache
	coalesced     uint64 // submissions attached to an in-flight identical job
	byOutcome     map[State]uint64
	latencies     *latencyRing
	runnerCrashes uint64            // recovered runner panics (injected or real)
	requeues      uint64            // jobs re-queued after a runner crash
	degraded      uint64            // jobs whose result reported Degraded
	schedClasses  map[string]uint64 // sched-engine classes routed, by engine name
	cubeCubes     uint64            // cubes solved by the cube engine, all jobs
	cubeSplits    uint64            // timed-out cubes the cube engine re-split

	// schedPriors is the sched engine's per-family routing history; it
	// lives next to the result cache so repeated workloads converge on the
	// right engines immediately. The store synchronises itself.
	schedPriors *simsweep.SchedPriorStore

	// histograms for /metrics; each synchronises itself (the kernel
	// launch observer fires concurrently from every runner).
	phaseHists map[string]*histogram // phase duration by kind (P/G/L)
	launchHist *histogram            // kernel launch sizes (items)
	queueHist  *histogram            // queue wait (submit → start)

	queue chan *job
	wg    sync.WaitGroup
	pubWG sync.WaitGroup // async federation publishes in flight
	devs  []*par.Device
}

// New starts a service: K runner goroutines, each owning one device.
func New(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		cache:     newLRU(cfg.CacheSize),
		inflight:  make(map[Key]*job),
		byOutcome: make(map[State]uint64),
		latencies: newLatencyRing(1024),
		phaseHists: map[string]*histogram{
			"P": newHistogram(phaseBuckets...),
			"G": newHistogram(phaseBuckets...),
			"L": newHistogram(phaseBuckets...),
		},
		launchHist:   newHistogram(launchBuckets...),
		queueHist:    newHistogram(queueBuckets...),
		queue:        make(chan *job, cfg.QueueCap),
		schedClasses: make(map[string]uint64),
		schedPriors:  simsweep.NewSchedPriorStore(0),
	}
	perDev := cfg.TotalWorkers / cfg.MaxConcurrent
	if perDev < 1 {
		perDev = 1
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		dev := par.NewDevice(perDev)
		// Every kernel launch of every job feeds the launch-size
		// histogram, whether or not the job is traced.
		dev.SetObserver(func(name string, items int, d time.Duration) {
			s.launchHist.observe(float64(items))
		})
		s.devs = append(s.devs, dev)
		s.wg.Add(1)
		go s.runner(dev)
	}
	return s
}

// Close drains the runners and releases their devices. Queued jobs that
// never ran are marked cancelled; running jobs are stopped cooperatively.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			j.stopNow(StateCancelled)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.pubWG.Wait()
	for _, dev := range s.devs {
		dev.Close()
	}
}

// Submit validates and enqueues a request. Cache hits complete instantly
// (the returned job is already done), as do federated-cache hits and
// submissions that coalesce onto an identical in-flight job (single-flight:
// concurrent submissions of the same fingerprint key execute exactly once —
// the leader runs, the duplicates settle from its verdict as cache hits).
// Otherwise the job is queued and one of the K runners will pick it up. A
// full queue fails with ErrQueueFull — that is the admission control the
// HTTP layer maps to 429.
func (s *Service) Submit(req Request) (Job, error) {
	key, err := KeyOf(req)
	if err != nil {
		return Job{}, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}

	s.mu.Lock()
	if snap, ok, err := s.submitFastLocked(req, key, timeout); ok || err != nil {
		s.mu.Unlock()
		return snap, err
	}
	if s.cfg.Remote == nil {
		// No federation: enqueue under the same critical section as the
		// fast check, so two racing submitters can never both lead.
		snap, err := s.enqueueLeaderLocked(req, key, timeout)
		s.mu.Unlock()
		if err == nil {
			s.logf("job %s: queued (engine %s)", snap.ID, engineName(req.Engine))
		}
		return snap, err
	}
	s.mu.Unlock()

	// Local miss with no in-flight leader: consult the federation before
	// paying for an execution. Network I/O, so no lock is held; the state
	// is re-checked afterwards because the lookup can race a local
	// completion or another submitter becoming leader.
	if res, ok := s.cfg.Remote.Lookup(key); ok && res.Outcome != simsweep.Undecided {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Job{}, ErrClosed
		}
		s.remoteHits++
		s.cache.put(key, res)
		j := s.newJobLocked(req, key, timeout)
		j.State = StateDone
		j.CacheHit = true
		j.Started = j.Created
		j.Finished = time.Now()
		r := TrimResult(res)
		j.Result = &r
		s.finishLocked(j)
		snap := j.Job
		s.mu.Unlock()
		s.logf("job %s: federated cache hit (%v)", snap.ID, res.Outcome)
		return snap, nil
	}

	s.mu.Lock()
	// Re-check under the lock: the federation lookup took real time, and a
	// local completion or a new leader may have appeared meanwhile.
	if snap, ok, err := s.submitFastLocked(req, key, timeout); ok || err != nil {
		s.mu.Unlock()
		return snap, err
	}
	snap, err := s.enqueueLeaderLocked(req, key, timeout)
	s.mu.Unlock()
	if err == nil {
		s.logf("job %s: queued (engine %s)", snap.ID, engineName(req.Engine))
	}
	return snap, err
}

// enqueueLeaderLocked creates a leader job and pushes it onto the runner
// queue, registering it in the in-flight index so identical submissions
// coalesce onto it. Callers hold s.mu and have already run the fast-path
// checks.
func (s *Service) enqueueLeaderLocked(req Request, key Key, timeout time.Duration) (Job, error) {
	s.misses++
	j := s.newJobLocked(req, key, timeout)
	// Snapshot before unlocking: once queued, a runner may start mutating
	// the job the instant the lock is released.
	snap := j.Job
	select {
	case s.queue <- j:
		s.inflight[key] = j
	default:
		delete(s.jobs, j.ID)
		s.misses--
		return Job{}, ErrQueueFull
	}
	return snap, nil
}

// newJobLocked allocates a queued job record. Callers hold s.mu.
func (s *Service) newJobLocked(req Request, key Key, timeout time.Duration) *job {
	s.seq++
	j := &job{
		Job: Job{
			ID:      fmt.Sprintf("j%d", s.seq),
			State:   StateQueued,
			Engine:  req.Engine,
			Timeout: timeout,
			Created: time.Now(),
		},
		key:  key,
		req:  req,
		stop: make(chan struct{}),
	}
	s.jobs[j.ID] = j
	return j
}

// submitFastLocked settles a submission without executing when it can: a
// local cache hit completes it instantly, and an identical in-flight leader
// absorbs it as a follower (single-flight). It reports ok=true when the
// submission was handled. Callers hold s.mu.
func (s *Service) submitFastLocked(req Request, key Key, timeout time.Duration) (Job, bool, error) {
	if s.closed {
		return Job{}, false, ErrClosed
	}
	if cached, ok := s.cache.get(key); ok {
		s.hits++
		j := s.newJobLocked(req, key, timeout)
		j.State = StateDone
		j.CacheHit = true
		j.Started = j.Created
		j.Finished = time.Now()
		res := cached
		j.Result = &res
		s.finishLocked(j)
		snap := j.Job
		s.logf("job %s: cache hit (%v)", snap.ID, res.Outcome)
		return snap, true, nil
	}
	if lead, ok := s.inflight[key]; ok && !lead.State.Terminal() {
		s.coalesced++
		j := s.newJobLocked(req, key, timeout)
		j.Coalesced = true
		lead.followers = append(lead.followers, j)
		snap := j.Job
		s.logf("job %s: coalesced onto in-flight %s", snap.ID, lead.ID)
		return snap, true, nil
	}
	return Job{}, false, nil
}

// Get returns a snapshot of the job.
func (s *Service) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.Job, nil
}

// Trace returns the Chrome trace_event JSON recorded for a traced job.
// It fails with ErrNotFound for unknown jobs and jobs that recorded no
// trace (not requested, cache hit, or still running — the trace is
// rendered when the job reaches a terminal state).
func (s *Service) Trace(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.traceJSON == nil {
		return nil, ErrNotFound
	}
	return append([]byte(nil), j.traceJSON...), nil
}

// Cancel requests cooperative cancellation of a queued or running job.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrNotFound
	}
	if j.State.Terminal() {
		snap := j.Job
		s.mu.Unlock()
		return snap, ErrFinished
	}
	queued := j.State == StateQueued
	if queued {
		// The runner will skip it; settle the record immediately.
		j.State = StateCancelled
		j.Finished = time.Now()
		s.finishLocked(j)
	}
	s.mu.Unlock()
	j.stopNow(StateCancelled)
	s.logf("job %s: cancel requested", id)
	s.mu.Lock()
	snap := j.Job
	s.mu.Unlock()
	return snap, nil
}

// Jobs returns snapshots of every retained job, newest first.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.Job)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	return out
}

// runner is one of the K scheduler loops; it owns dev for its lifetime, so
// at most K devices are ever simulating and total workers stay bounded. A
// runner that crashes mid-job (an injected service.runner.crash fault, or a
// genuine bug escaping the engines) recovers, disposes of the job — re-queue
// once, then fail — and restarts after a capped exponential backoff, so a
// crashing workload degrades the service's throughput, never its liveness.
func (s *Service) runner(dev *par.Device) {
	defer s.wg.Done()
	backoff := s.cfg.CrashBackoffBase
	for j := range s.queue {
		if s.runGuarded(j, dev) {
			backoff = s.cfg.CrashBackoffBase // a clean job resets the ramp
			continue
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > s.cfg.CrashBackoffMax {
			backoff = s.cfg.CrashBackoffMax
		}
	}
}

// runGuarded runs one job, converting a panicking runner into a recovered
// crash. It reports whether the job completed without a crash.
func (s *Service) runGuarded(j *job, dev *par.Device) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.crashed(j, r)
			ok = false
		}
	}()
	// Model the runner itself dying as it picks up the job (a heap blow-up,
	// a bug outside the engines' own recovery nets). The panic unwinds to
	// the recover above.
	s.cfg.Faults.Panic(fault.HookRunnerCrash)
	s.runJob(j, dev)
	return true
}

// crashed settles a job whose runner panicked: re-queue it once, fail it
// with a typed error when it already burned its retry (or the queue is
// full, closed, or the job was cancelled meanwhile).
func (s *Service) crashed(j *job, cause interface{}) {
	s.mu.Lock()
	s.runnerCrashes++
	if j.State == StateRunning {
		s.running--
	}
	if j.State.Terminal() {
		// The panic struck after the job settled; nothing to repair.
		s.mu.Unlock()
		s.logf("runner: recovered crash after job %s settled: %v", j.ID, cause)
		return
	}
	if j.Retries == 0 && !s.closed && !stopClosed(j.stop) {
		j.Retries++
		j.State = StateQueued
		select {
		case s.queue <- j:
			s.requeues++
			s.mu.Unlock()
			s.logf("job %s: runner crashed (%v); re-queued (retry 1)", j.ID, cause)
			return
		default: // queue full: fall through to failure
		}
	}
	j.State = StateFailed
	j.Err = fmt.Sprintf("runner crashed: %v", cause)
	j.Finished = time.Now()
	s.finishLocked(j)
	s.mu.Unlock()
	s.logf("job %s: failed (%s)", j.ID, j.Err)
}

// stopClosed reports whether a job's stop channel has been closed.
func stopClosed(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

func (s *Service) runJob(j *job, dev *par.Device) {
	s.mu.Lock()
	if j.State != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	if stopClosed(j.stop) {
		// The job's stop channel closed while it sat in the queue (service
		// shutdown, or a cancel that raced the state update): settle it
		// without ever running — a withdrawn job must never report
		// "running", and must never produce (and cache) a verdict.
		j.State = j.cause
		if j.State == "" {
			j.State = StateCancelled
		}
		j.Finished = time.Now()
		s.finishLocked(j)
		s.mu.Unlock()
		s.logf("job %s: %s (while queued)", j.ID, j.State)
		return
	}
	j.State = StateRunning
	j.Started = time.Now()
	s.running++
	s.mu.Unlock()
	s.queueHist.observe(j.Started.Sub(j.Created).Seconds())
	s.logf("job %s: running", j.ID)

	var tracer *trace.Tracer
	if j.req.Trace {
		tracer = trace.New(0)
		tracer.Enable()
	}
	var timer *time.Timer
	if j.Timeout > 0 {
		timer = time.AfterFunc(j.Timeout, func() { j.stopNow(StateTimeout) })
	}
	launchesBefore := totalLaunches(dev)
	res, err := s.check(j.req, dev, j.stop, tracer)
	if timer != nil {
		timer.Stop()
	}
	var traceJSON []byte
	if tracer != nil {
		tracer.Disable()
		var buf bytes.Buffer
		if werr := trace.WriteChromeTrace(&buf, tracer); werr == nil {
			traceJSON = buf.Bytes()
		}
	}
	for _, p := range res.SimPhases {
		if h := s.phaseHists[p.Kind.String()]; h != nil {
			h.observe(p.Duration.Seconds())
		}
	}

	publish := false
	s.mu.Lock()
	j.Finished = time.Now()
	j.KernelLaunches = totalLaunches(dev) - launchesBefore
	j.traceJSON = traceJSON
	j.Traced = traceJSON != nil
	s.running--
	switch {
	case err != nil:
		j.State = StateFailed
		j.Err = err.Error()
	case res.Stopped:
		// The engines returned early because the stop channel closed;
		// the closer recorded whether it was the deadline or the client.
		j.State = j.cause
		if j.State == "" { // stop raced a genuine finish; treat as done
			j.State = StateDone
		}
		j.Result = &res
	default:
		j.State = StateDone
		j.Result = &res
		// A degraded verdict is still trustworthy (faulted work withdraws
		// its claims rather than guess) but is not cached: a later identical
		// submission deserves a healthy run, and chaos soaks must keep
		// exercising the engines rather than the cache.
		if res.Outcome != simsweep.Undecided && !res.Degraded {
			s.cache.put(j.key, res)
			publish = true
		}
	}
	if res.Degraded {
		s.degraded++
	}
	if res.Sched != nil {
		for e, row := range res.Sched.PerEngine {
			s.schedClasses[e] += row.Routed
		}
	}
	if res.Cube != nil {
		s.cubeCubes += uint64(res.Cube.Cubes)
		s.cubeSplits += uint64(res.Cube.Splits)
	}
	s.finishLocked(j)
	s.mu.Unlock()
	s.logf("job %s: %s", j.ID, j.State)
	if publish && s.cfg.Remote != nil {
		// Offer the decided verdict to the federation off the runner's
		// critical path; the publish is best-effort and must never hold a
		// runner (or a lock) across the network.
		key, trimmed := j.key, TrimResult(res)
		s.pubWG.Add(1)
		go func() {
			defer s.pubWG.Done()
			s.cfg.Remote.Publish(key, trimmed)
		}()
	}
}

// check dispatches the engines with the runner's device and the job's stop
// channel wired into the cooperative cancellation path.
func (s *Service) check(req Request, dev *par.Device, stop <-chan struct{}, tracer *trace.Tracer) (simsweep.Result, error) {
	opts := simsweep.Options{
		Engine:        req.Engine,
		Seed:          req.Seed,
		ConflictLimit: req.ConflictLimit,
		Dev:           dev,
		Workers:       dev.Workers(),
		Stop:          stop,
		Trace:         tracer,
		Faults:        s.cfg.Faults,
		PhaseBudget:   s.cfg.PhaseBudget,
		SchedPriors:   s.schedPriors,
	}
	if req.Miter != nil {
		return simsweep.CheckMiter(req.Miter, opts)
	}
	return simsweep.CheckEquivalence(req.A, req.B, opts)
}

// finishLocked records a terminal job in the ring and counters, evicting
// the oldest retained record beyond RingSize, and — when the job led an
// in-flight coalition — settles or promotes its followers. Callers hold
// s.mu.
func (s *Service) finishLocked(j *job) {
	s.byOutcome[j.State]++
	if j.State == StateDone && !j.CacheHit {
		s.latencies.add(j.Finished.Sub(j.Created))
	}
	s.ring = append(s.ring, j.ID)
	if len(s.ring) > s.cfg.RingSize {
		evict := s.ring[0]
		s.ring = s.ring[1:]
		if old, ok := s.jobs[evict]; ok && old.State.Terminal() {
			delete(s.jobs, evict)
		}
	}
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
		s.resolveFollowersLocked(j)
	}
}

// resolveFollowersLocked settles the followers of a just-finished leader.
// A decided, non-degraded leader verdict settles every waiting follower as
// a cache hit (the single execution answered them all). Any other terminal
// state — failed, cancelled, timed out, undecided or degraded — keeps the
// followers' promise of a healthy check: the first live follower is
// promoted to leader and re-enqueued, carrying the rest. Callers hold s.mu.
func (s *Service) resolveFollowersLocked(j *job) {
	live := j.followers[:0]
	for _, f := range j.followers {
		if !f.State.Terminal() {
			live = append(live, f)
		}
	}
	j.followers = nil
	settle := func(f *job, state State, err string) {
		f.State = state
		f.Err = err
		f.Finished = time.Now()
		s.finishLocked(f) // never recurses: a follower is not in s.inflight
	}
	cacheable := j.State == StateDone && j.Result != nil &&
		j.Result.Outcome != simsweep.Undecided && !j.Result.Degraded
	if cacheable {
		for _, f := range live {
			res := TrimResult(*j.Result)
			f.CacheHit = true
			f.Started = f.Created
			f.Result = &res
			settle(f, StateDone, "")
			s.logf("job %s: settled from leader %s (%v)", f.ID, j.ID, res.Outcome)
		}
		return
	}
	for len(live) > 0 {
		lead := live[0]
		live = live[1:]
		if s.closed || stopClosed(lead.stop) {
			settle(lead, StateCancelled, "")
			continue
		}
		select {
		case s.queue <- lead:
			s.inflight[lead.key] = lead
			lead.followers = live
			s.logf("job %s: promoted to leader after %s finished %s", lead.ID, j.ID, j.State)
			return
		default:
			settle(lead, StateFailed, ErrQueueFull.Error())
		}
	}
}

// Stats is a point-in-time snapshot of the service counters for /metrics.
type Stats struct {
	QueueDepth  int
	QueueCap    int
	Running     int
	CacheHits   uint64
	CacheMisses uint64
	CacheSize   int
	// RemoteHits counts submissions answered by the federated cache
	// (Config.Remote) without a local execution.
	RemoteHits uint64
	// Coalesced counts submissions that attached to an identical in-flight
	// job instead of executing (single-flight duplicates).
	Coalesced  uint64
	ByOutcome  map[State]uint64
	P50        time.Duration
	P99        time.Duration
	Workers    int // total worker budget across the K devices
	Concurrent int // K
	// RunnerCrashes counts recovered runner panics; Requeues the jobs given
	// a second attempt after one; Degraded the jobs whose result survived
	// internal faults.
	RunnerCrashes uint64
	Requeues      uint64
	Degraded      uint64
	// FaultsByHook is the armed injector's fire count per hook (nil when
	// the service runs without fault injection).
	FaultsByHook map[string]uint64
	// SchedClasses counts the classes the sched engine routed, by engine
	// name, across every job the service ran (nil until a sched job ran).
	SchedClasses map[string]uint64
	// CubeCubes counts the cubes the cube engine solved across every job;
	// CubeSplits the timed-out cubes it re-split.
	CubeCubes  uint64
	CubeSplits uint64
}

// Stats returns the current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[State]uint64, len(s.byOutcome))
	for k, v := range s.byOutcome {
		by[k] = v
	}
	var sched map[string]uint64
	if len(s.schedClasses) > 0 {
		sched = make(map[string]uint64, len(s.schedClasses))
		for k, v := range s.schedClasses {
			sched[k] = v
		}
	}
	p50, p99 := s.latencies.percentiles()
	return Stats{
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.QueueCap,
		Running:       s.running,
		CacheHits:     s.hits,
		CacheMisses:   s.misses,
		CacheSize:     s.cache.len(),
		RemoteHits:    s.remoteHits,
		Coalesced:     s.coalesced,
		ByOutcome:     by,
		P50:           p50,
		P99:           p99,
		Workers:       s.cfg.TotalWorkers,
		Concurrent:    s.cfg.MaxConcurrent,
		RunnerCrashes: s.runnerCrashes,
		Requeues:      s.requeues,
		Degraded:      s.degraded,
		FaultsByHook:  s.cfg.Faults.Counts(),
		SchedClasses:  sched,
		CubeCubes:     s.cubeCubes,
		CubeSplits:    s.cubeSplits,
	}
}

// Ready reports whether the service can admit new work: it is open and the
// submission queue has a free slot. cmd/cecd serves it as /readyz, the
// signal load balancers and the cluster coordinator share — a saturated
// node answers 503 and stops receiving traffic until the queue drains.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && len(s.queue) < s.cfg.QueueCap
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

func engineName(e simsweep.Engine) string {
	if e == "" {
		return string(simsweep.EngineHybrid)
	}
	return string(e)
}

// totalLaunches sums the kernel launch counts of a device's profile.
func totalLaunches(dev *par.Device) int {
	n := 0
	for _, ks := range dev.Stats() {
		n += ks.Launches
	}
	return n
}

// latencyRing keeps the last n end-to-end latencies of completed jobs for
// cheap p50/p99 estimation.
type latencyRing struct {
	buf  []time.Duration
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]time.Duration, n)} }

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *latencyRing) percentiles() (p50, p99 time.Duration) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if n == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), r.buf[:n]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(p float64) int {
		i := int(p * float64(n-1))
		return i
	}
	return sorted[idx(0.50)], sorted[idx(0.99)]
}
