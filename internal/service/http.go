package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"simsweep"
	"simsweep/internal/aig"
	"simsweep/internal/aiger"
)

// JobRequest is the JSON body of POST /v1/jobs. Circuits are AIGER files
// (ASCII "aag" or binary "aig"), base64-encoded. Either a and b (a pair
// with matching interfaces) or miter must be present.
type JobRequest struct {
	A     string `json:"a,omitempty"`
	B     string `json:"b,omitempty"`
	Miter string `json:"miter,omitempty"`

	Engine        string `json:"engine,omitempty"` // hybrid|sim|sat|bdd|portfolio|sched|cube
	Seed          int64  `json:"seed,omitempty"`
	ConflictLimit int64  `json:"conflict_limit,omitempty"`
	TimeoutMS     int64  `json:"timeout_ms,omitempty"`
	// Trace requests an execution trace (also settable as ?trace=1);
	// fetch it from GET /v1/jobs/{id}/trace once the job finishes.
	Trace bool `json:"trace,omitempty"`
}

// JobJSON is the wire representation of a job.
type JobJSON struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Engine  string `json:"engine"`
	Cached  bool   `json:"cached"`
	Traced  bool   `json:"traced,omitempty"`
	Error   string `json:"error,omitempty"`
	Timeout string `json:"timeout,omitempty"`

	Verdict        string  `json:"verdict,omitempty"`
	CEX            []int   `json:"cex,omitempty"`
	EngineUsed     string  `json:"engine_used,omitempty"`
	RuntimeMS      float64 `json:"runtime_ms,omitempty"`
	SATTimeMS      float64 `json:"sat_time_ms,omitempty"`
	ReducedPercent float64 `json:"reduced_percent,omitempty"`
	PhasesRun      int     `json:"phases_run,omitempty"`
	KernelLaunches int     `json:"kernel_launches,omitempty"`
	// Degraded marks a verdict that survived internal faults. The cluster
	// coordinator reads it off the wire: degraded verdicts are returned to
	// the client but never federated.
	Degraded bool `json:"degraded,omitempty"`
	// Node names the worker that executed the job; set by the cluster
	// coordinator, empty on a single-node daemon.
	Node string `json:"node,omitempty"`
	// SchedClasses counts the classes the sched engine routed, by prover
	// (sched jobs only). The cluster coordinator aggregates it across
	// workers into its own metrics.
	SchedClasses map[string]uint64 `json:"sched_classes,omitempty"`

	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

func jobJSON(j Job) JobJSON {
	out := JobJSON{
		ID:             j.ID,
		State:          string(j.State),
		Engine:         engineName(j.Engine),
		Cached:         j.CacheHit,
		Traced:         j.Traced,
		Error:          j.Err,
		KernelLaunches: j.KernelLaunches,
		Created:        timeJSON(j.Created),
		Started:        timeJSON(j.Started),
		Finished:       timeJSON(j.Finished),
	}
	if j.Timeout > 0 {
		out.Timeout = j.Timeout.String()
	}
	if r := j.Result; r != nil {
		out.Verdict = r.Outcome.String()
		out.EngineUsed = r.EngineUsed
		out.RuntimeMS = float64(r.Runtime) / float64(time.Millisecond)
		out.SATTimeMS = float64(r.SATTime) / float64(time.Millisecond)
		out.ReducedPercent = r.ReducedPercent
		out.PhasesRun = len(r.SimPhases)
		out.Degraded = r.Degraded
		if r.Sched != nil && len(r.Sched.PerEngine) > 0 {
			out.SchedClasses = make(map[string]uint64, len(r.Sched.PerEngine))
			for e, row := range r.Sched.PerEngine {
				out.SchedClasses[e] = row.Routed
			}
		}
		if r.Outcome == simsweep.NotEquivalent && r.CEX != nil {
			out.CEX = make([]int, len(r.CEX))
			for i, v := range r.CEX {
				if v {
					out.CEX[i] = 1
				}
			}
		}
	}
	return out
}

func timeJSON(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// NewHandler exposes the service over HTTP:
//
//	POST   /v1/jobs            submit a check (202; 200 on an instant cache
//	                           hit); ?trace=1 records an execution trace
//	GET    /v1/jobs            list retained jobs, newest first
//	GET    /v1/jobs/{id}       job status, verdict, counter-example
//	GET    /v1/jobs/{id}/trace Chrome trace_event JSON of a traced job
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /healthz            liveness
//	GET    /readyz             readiness (503 while the queue is saturated)
//	GET    /metrics            text-format counters and histograms
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobJSON, len(jobs))
		for i, j := range jobs {
			out[i] = jobJSON(j)
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobJSON(j))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		data, err := s.Trace(id)
		if err != nil {
			// Distinguish "job still running / untraced" from "no job".
			if j, jerr := s.Get(id); jerr == nil {
				if !j.State.Terminal() {
					writeError(w, http.StatusConflict, errors.New("service: job not finished"))
					return
				}
				writeError(w, http.StatusNotFound, errors.New("service: job recorded no trace"))
				return
			}
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrFinished):
			writeJSON(w, http.StatusConflict, jobJSON(j))
		default:
			writeJSON(w, http.StatusOK, jobJSON(j))
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "queue saturated")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeMetrics(w, s.Stats())
		s.writeHistograms(w)
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Trace = req.Trace || r.URL.Query().Get("trace") == "1"

	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case j.State.Terminal(): // instant cache hit
		writeJSON(w, http.StatusOK, jobJSON(j))
	default:
		writeJSON(w, http.StatusAccepted, jobJSON(j))
	}
}

// DecodeRequest imports a wire-format job body into an executable Request:
// the base64 AIGER payloads are parsed into circuits and the engine name is
// validated. It is the import half of the cluster's job forwarding — the
// coordinator and every worker accept exactly the same bodies.
func DecodeRequest(body JobRequest) (Request, error) {
	req := Request{
		Engine:        simsweep.Engine(body.Engine),
		Seed:          body.Seed,
		ConflictLimit: body.ConflictLimit,
		Timeout:       time.Duration(body.TimeoutMS) * time.Millisecond,
		Trace:         body.Trace,
	}
	var err error
	if body.Miter != "" {
		if req.Miter, err = decodeAIGER("miter", body.Miter); err != nil {
			return Request{}, err
		}
	}
	if body.A != "" || body.B != "" {
		if req.A, err = decodeAIGER("a", body.A); err != nil {
			return Request{}, err
		}
		if req.B, err = decodeAIGER("b", body.B); err != nil {
			return Request{}, err
		}
	}
	switch req.Engine {
	case "", simsweep.EngineHybrid, simsweep.EngineSim, simsweep.EngineSAT,
		simsweep.EngineBDD, simsweep.EnginePortfolio, simsweep.EngineSched,
		simsweep.EngineCube:
	default:
		return Request{}, fmt.Errorf("unknown engine %q", body.Engine)
	}
	return req, nil
}

// EncodeRequest exports a Request back into the wire format accepted by
// POST /v1/jobs: circuits are serialised as base64 binary AIGER. It is the
// export half of the cluster's job forwarding; DecodeRequest inverts it.
func EncodeRequest(req Request) (JobRequest, error) {
	body := JobRequest{
		Engine:        string(req.Engine),
		Seed:          req.Seed,
		ConflictLimit: req.ConflictLimit,
		TimeoutMS:     int64(req.Timeout / time.Millisecond),
		Trace:         req.Trace,
	}
	encode := func(g *aig.AIG) (string, error) {
		var buf bytes.Buffer
		if err := aiger.Write(&buf, g, true); err != nil {
			return "", err
		}
		return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
	}
	var err error
	switch {
	case req.Miter != nil && req.A == nil && req.B == nil:
		if body.Miter, err = encode(req.Miter); err != nil {
			return JobRequest{}, err
		}
	case req.Miter == nil && req.A != nil && req.B != nil:
		if body.A, err = encode(req.A); err != nil {
			return JobRequest{}, err
		}
		if body.B, err = encode(req.B); err != nil {
			return JobRequest{}, err
		}
	default:
		return JobRequest{}, ErrBadRequest
	}
	return body, nil
}

func decodeAIGER(field, b64 string) (*aig.AIG, error) {
	if b64 == "" {
		return nil, fmt.Errorf("field %q missing", field)
	}
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("field %q: bad base64: %w", field, err)
	}
	g, err := aiger.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("field %q: bad AIGER: %w", field, err)
	}
	return g, nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
