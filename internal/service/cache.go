package service

import (
	"container/list"

	"simsweep"
)

// cacheKey identifies a check semantically: the canonical structural
// fingerprints of the two circuits of a pair (order-normalised, so (B, A)
// resubmissions hit the (A, B) entry), or the fingerprint of a miter. The
// engine, seed and limits are deliberately excluded: only decided verdicts
// are cached, and a decided verdict is a property of the circuits alone.
type cacheKey struct {
	mode   byte // 'p' pair, 'm' miter
	lo, hi uint64
}

// keyOf validates the request shape and derives its cache key.
func keyOf(req Request) (cacheKey, error) {
	switch {
	case req.Miter != nil && req.A == nil && req.B == nil:
		fp := req.Miter.Fingerprint()
		return cacheKey{mode: 'm', lo: fp, hi: fp}, nil
	case req.Miter == nil && req.A != nil && req.B != nil:
		fa, fb := req.A.Fingerprint(), req.B.Fingerprint()
		if fa > fb {
			fa, fb = fb, fa
		}
		return cacheKey{mode: 'p', lo: fa, hi: fb}, nil
	default:
		return cacheKey{}, ErrBadRequest
	}
}

// lru is a plain LRU map over cached results. It is not self-locking; the
// Service serialises access under its own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	res simsweep.Result
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), byKey: make(map[cacheKey]*list.Element)}
}

func (c *lru) get(key cacheKey) (simsweep.Result, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return simsweep.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put inserts a trimmed copy of the result: the verdict, counter-example
// and headline numbers are retained, the bulky artifacts (reduced miter,
// journal, pattern bank, phase records) are dropped so the cache footprint
// stays proportional to CacheSize, not to miter sizes.
func (c *lru) put(key cacheKey, res simsweep.Result) {
	trimmed := simsweep.Result{
		Outcome:        res.Outcome,
		CEX:            res.CEX,
		Runtime:        res.Runtime,
		EngineUsed:     res.EngineUsed,
		ReducedPercent: res.ReducedPercent,
		SATTime:        res.SATTime,
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = trimmed
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: trimmed})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.order.Len() }
