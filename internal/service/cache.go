package service

import (
	"container/list"
	"fmt"

	"simsweep"
)

// Key identifies a check semantically: the canonical structural
// fingerprints of the two circuits of a pair (order-normalised, so (B, A)
// resubmissions hit the (A, B) entry), or the fingerprint of a miter. The
// engine, seed and limits are deliberately excluded: only decided verdicts
// are cached, and a decided verdict is a property of the circuits alone.
// The cluster layer shards jobs and federates verdicts by the same key.
type Key struct {
	// Mode is 'p' for a pair and 'm' for a miter.
	Mode byte
	// Lo and Hi are the order-normalised fingerprints (equal in miter mode).
	Lo, Hi uint64
}

// String renders the key for logs and wire query parameters.
func (k Key) String() string {
	return fmt.Sprintf("%c:%016x:%016x", k.Mode, k.Lo, k.Hi)
}

// Shard folds the key into the single hash value used for consistent-hash
// sharding: jobs with the same semantic identity always land on the same
// ring owner.
func (k Key) Shard() uint64 {
	x := k.Lo ^ (k.Hi * 0x9e3779b97f4a7c15) ^ uint64(k.Mode)<<56
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// KeyOf validates the request shape and derives its cache/shard key.
func KeyOf(req Request) (Key, error) {
	switch {
	case req.Miter != nil && req.A == nil && req.B == nil:
		fp := req.Miter.Fingerprint()
		return Key{Mode: 'm', Lo: fp, Hi: fp}, nil
	case req.Miter == nil && req.A != nil && req.B != nil:
		fa, fb := req.A.Fingerprint(), req.B.Fingerprint()
		if fa > fb {
			fa, fb = fb, fa
		}
		return Key{Mode: 'p', Lo: fa, Hi: fb}, nil
	default:
		return Key{}, ErrBadRequest
	}
}

// RemoteCache federates decided verdicts across nodes: a service configured
// with one consults it on a local cache miss and publishes its own decided,
// non-degraded results back. Implementations must be safe for concurrent
// use; Lookup and Publish are called without any service lock held, so they
// may do network I/O. The cluster coordinator's verdict index is the
// canonical implementation.
type RemoteCache interface {
	// Lookup returns a previously decided result for the key, if any node
	// in the federation has one.
	Lookup(key Key) (simsweep.Result, bool)
	// Publish offers a decided, non-degraded result to the federation.
	// Best-effort: errors are swallowed by the implementation.
	Publish(key Key, res simsweep.Result)
}

// lru is a plain LRU map over cached results. It is not self-locking; the
// Service serialises access under its own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[Key]*list.Element
}

type lruEntry struct {
	key Key
	res simsweep.Result
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), byKey: make(map[Key]*list.Element)}
}

func (c *lru) get(key Key) (simsweep.Result, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return simsweep.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put inserts a trimmed copy of the result: the verdict, counter-example
// and headline numbers are retained, the bulky artifacts (reduced miter,
// journal, pattern bank, phase records) are dropped so the cache footprint
// stays proportional to CacheSize, not to miter sizes.
func (c *lru) put(key Key, res simsweep.Result) {
	trimmed := TrimResult(res)
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = trimmed
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: trimmed})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.order.Len() }

// TrimResult strips a result down to the fields worth caching or shipping
// across the federation: the verdict, counter-example and headline numbers
// survive; bulky artifacts (reduced miter, journal, pattern bank, phase
// records) are dropped.
func TrimResult(res simsweep.Result) simsweep.Result {
	return simsweep.Result{
		Outcome:        res.Outcome,
		CEX:            res.CEX,
		Runtime:        res.Runtime,
		EngineUsed:     res.EngineUsed,
		ReducedPercent: res.ReducedPercent,
		SATTime:        res.SATTime,
	}
}
