package simsweep

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func genPair(t *testing.T, name string, scale int) (*AIG, *AIG) {
	t.Helper()
	g, err := Generate(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return g, Optimize(g)
}

func TestAllEnginesAgreeOnEquivalentPair(t *testing.T) {
	g, o := genPair(t, "multiplier", 6)
	for _, engine := range []Engine{EngineHybrid, EngineSim, EngineSAT, EngineBDD, EnginePortfolio} {
		res, err := CheckEquivalence(g, o, Options{Engine: engine, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.Outcome != Equivalent {
			t.Fatalf("%s: outcome = %v", engine, res.Outcome)
		}
	}
}

func TestAllEnginesAgreeOnBuggyPair(t *testing.T) {
	g, o := genPair(t, "multiplier", 6)
	bad := o.Copy()
	bad.SetPO(4, bad.PO(4).Not())
	m, err := BuildMiter(g, bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineHybrid, EngineSim, EngineSAT, EngineBDD, EnginePortfolio} {
		res, err := CheckMiter(m, Options{Engine: engine, Seed: 8})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.Outcome != NotEquivalent {
			t.Fatalf("%s: outcome = %v", engine, res.Outcome)
		}
		if res.CEX != nil {
			fired := false
			for _, v := range m.Eval(res.CEX) {
				fired = fired || v
			}
			if !fired {
				t.Fatalf("%s: CEX does not fire the miter", engine)
			}
		}
	}
}

func TestHybridReportsSimReduction(t *testing.T) {
	g, o := genPair(t, "multiplier", 7)
	res, err := CheckEquivalence(g, o, Options{Engine: EngineHybrid, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Equivalent {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.ReducedPercent < 99.9 {
		t.Fatalf("sim engine reduced only %.1f%%", res.ReducedPercent)
	}
	if res.SimStats == nil || len(res.SimPhases) == 0 {
		t.Fatal("sim statistics missing from hybrid result")
	}
}

func TestInterfaceMismatchRejected(t *testing.T) {
	a, err := Generate("adder", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("adder", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEquivalence(a, b, Options{}); err == nil {
		t.Fatal("mismatched interfaces accepted")
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	g, _ := genPair(t, "adder", 4)
	if _, err := CheckEquivalence(g, g, Options{Engine: "quantum"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestAIGERRoundTripThroughPublicAPI(t *testing.T) {
	g, err := Generate("voter", 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAIGER(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAIGER(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckEquivalence(g, back, Options{Engine: EngineSim, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Equivalent {
		t.Fatalf("AIGER round trip broke the function: %v", res.Outcome)
	}
}

func TestDoubleEnlargement(t *testing.T) {
	g, err := Generate("adder", 4)
	if err != nil {
		t.Fatal(err)
	}
	d := Double(g, 2)
	if d.NumPIs() != 4*g.NumPIs() || d.NumPOs() != 4*g.NumPOs() {
		t.Fatalf("double x2 interface: %d PIs %d POs", d.NumPIs(), d.NumPOs())
	}
	// Doubled circuits must still verify against their doubled optimized
	// versions — the construction of every Table II miter.
	od := Double(Optimize(g), 2)
	res, err := CheckEquivalence(d, od, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Equivalent {
		t.Fatalf("doubled miter: %v", res.Outcome)
	}
}

func TestBenchmarkNamesGenerate(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g, err := Generate(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumAnds() == 0 {
			t.Fatalf("%s: empty circuit", name)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	g, o := genPair(t, "multiplier", 6)
	var got []Outcome
	for _, workers := range []int{1, 4} {
		res, err := CheckEquivalence(g, o, Options{Engine: EngineSim, Workers: workers, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Outcome)
	}
	if got[0] != got[1] || got[0] != Equivalent {
		t.Fatalf("verdicts differ across worker counts: %v", got)
	}
}

func TestStoppedDistinguishesCancelledRun(t *testing.T) {
	g, o := genPair(t, "multiplier", 8)
	stop := make(chan struct{})
	close(stop)
	for _, engine := range []Engine{EngineHybrid, EngineSim, EngineSAT} {
		res, err := CheckEquivalence(g, o, Options{Engine: engine, Seed: 3, Stop: stop})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.Outcome != Undecided {
			t.Fatalf("%s: cancelled run decided the miter: %v", engine, res.Outcome)
		}
		if !res.Stopped {
			t.Fatalf("%s: cancelled undecided run not marked Stopped", engine)
		}
	}
	// Control: an uncancelled run must not claim it was stopped.
	res, err := CheckEquivalence(g, o, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Equivalent || res.Stopped {
		t.Fatalf("clean run: outcome=%v stopped=%v", res.Outcome, res.Stopped)
	}
}

func TestStopMidRunReturnsPromptlyAndDeviceIsReusable(t *testing.T) {
	// A large miter whose SAT sweep runs for a while: cancel it mid-run
	// and require a prompt, clean return that leaves the shared device
	// usable for the next check (the service layer depends on both).
	g, o := genPair(t, "multiplier", 11)
	dev := NewDevice(4)
	defer dev.Close()

	stop := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	start := time.Now()
	res, err := CheckEquivalence(g, o, Options{Engine: EngineSAT, Seed: 5, Stop: stop, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run returned only after %v", elapsed)
	}
	if res.Outcome == Undecided && !res.Stopped {
		t.Fatal("cancelled undecided run not marked Stopped")
	}

	// The device must be left reusable: run a small complete check on it.
	g2, o2 := genPair(t, "adder", 6)
	res2, err := CheckEquivalence(g2, o2, Options{Seed: 5, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != Equivalent || res2.Stopped {
		t.Fatalf("device unusable after cancellation: outcome=%v stopped=%v", res2.Outcome, res2.Stopped)
	}
}

func TestRandomisedCrossEngineAgreement(t *testing.T) {
	// Integration property: on random small circuits, all engines agree
	// with ground-truth enumeration.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		build := func(mutate bool) *AIG {
			r := rand.New(rand.NewSource(int64(trial)))
			g := NewAIG()
			var lits []Lit
			for i := 0; i < 6; i++ {
				lits = append(lits, g.AddPI())
			}
			for i := 0; i < 40; i++ {
				a := lits[r.Intn(len(lits))].NotIf(r.Intn(2) == 1)
				b := lits[r.Intn(len(lits))].NotIf(r.Intn(2) == 1)
				lits = append(lits, g.And(a, b))
			}
			out := lits[len(lits)-1]
			if mutate {
				out = g.Xor(out, g.And(lits[7], lits[9]))
			}
			g.AddPO(out)
			return g
		}
		mutate := trial%2 == 1
		g1, g2 := build(false), build(mutate)
		same := true
		for pat := 0; pat < 64; pat++ {
			in := make([]bool, 6)
			for i := range in {
				in[i] = (pat>>uint(i))&1 == 1
			}
			if g1.Eval(in)[0] != g2.Eval(in)[0] {
				same = false
				break
			}
		}
		for _, engine := range []Engine{EngineHybrid, EngineSim, EngineSAT, EngineBDD} {
			res, err := CheckEquivalence(g1, g2, Options{Engine: engine, Seed: rng.Int63()})
			if err != nil {
				t.Fatal(err)
			}
			want := Equivalent
			if !same {
				want = NotEquivalent
			}
			if res.Outcome != want {
				t.Fatalf("trial %d %s: outcome = %v, want %v", trial, engine, res.Outcome, want)
			}
		}
	}
}
