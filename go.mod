module simsweep

go 1.22
